//! The full simulated system and its event loop.
//!
//! Wiring (Table II): 4 cores (4 GHz, 192-entry ROB, 8-wide) with private
//! L1s (32 KB/2-way, 2 cycles) → shared L2 (8 MB, 20 cycles, MSHRs) →
//! the DRAM-cache controller (one [`ChannelController`] per channel) →
//! the stacked-DRAM device (4 channels × 16 banks, open page) → main
//! memory ([`SystemConfig::main_mem`]: the flat 50 ns + off-chip-bus
//! model, or a cycle-level DDR4-style device pumped by its own
//! `MemPump`/`MemArrive` events — see the `dca_mem_hier::memory` docs).
//!
//! ## Flow of a demand read
//! L2 miss → MSHR → `CacheRequest{Read}` to the block's channel → FSM
//! emits the tag (or TAD) read → controller schedules it per design →
//! tag resolution → hit: data read (+ replacement-bit tag write), data
//! answers the cores; miss: main-memory fetch (overlapped with the tag
//! check when MAP-I predicted a miss), the returned block answers the
//! cores immediately and a `Refill` request installs it in the cache.
//!
//! ## Flow of a writeback
//! L2 dirty eviction → `CacheRequest{Writeback}` → tag read (the LR the
//! whole paper is about) → data+tag writes; a displaced dirty victim is
//! read out and written to main memory.
//!
//! Determinism: one event queue with (time, insertion) ordering; all
//! randomness comes from the seeded workload generators.
//!
//! Hot-path state is slab-indexed: request and access ids are packed
//! generational [`SlabKey`]s, so every per-event lookup is a direct array
//! access — no hashing anywhere in the event loop (see the
//! `dca_sim_core` crate docs for the engine architecture).

use std::collections::VecDeque;

use dca_cpu::{Benchmark, Core, CoreConfig, MemOp, MemPort, OpStream, PortResponse};
use dca_dram::DramChannel;
use dca_dram_cache::{
    CacheGeometry, CacheReqKind, CacheRequest, MapI, OrgKind, RequestFsm, RequestId, TagArray,
};
use dca_mem_hier::{collect_same_row_dirty, MainMemory, MemArrival, Mshr, MshrOutcome, SramCache};
use dca_metrics::LatencyStat;
use dca_sim_core::{
    BaselineEventQueue, Duration, EventQueue, FastHashMap, SeedSplitter, SimTime, Slab, SlabKey,
};

use crate::config::{Design, EngineSel, SystemConfig};
use crate::controller::{AccessMeta, ChannelController};
use crate::report::{ChannelReport, CoreReport, SystemReport};
use crate::rrpc::Rrpc;
use crate::timeline::{Timeline, TimelineEntry};
use crate::warm::WarmState;

/// Events driving the simulation.
#[derive(Clone, Copy, Debug)]
enum Ev {
    /// (Re-)advance a core.
    CoreWake(u8),
    /// Deliver load data to a core, then advance it.
    Deliver { core: u8, token: u64 },
    /// Run a channel's admission + scheduling.
    Pump(u8),
    /// A DRAM access's burst completed.
    AccessDone { ch: u8, access_id: u64 },
    /// Main-memory data for a demand-read miss arrived (flat backend:
    /// the completion time was known analytically at submission).
    MemData { req: RequestId },
    /// Run the cycle-level main-memory device's FR-FCFS scheduler.
    MemPump,
    /// Launch a cycle-backend speculative fetch at the L2-miss time the
    /// request was submitted with. The enqueue must happen *at* that
    /// instant — enqueuing early would let an unrelated pump issue the
    /// access before its own submission time.
    MemFetch { req: RequestId },
    /// A cycle-level main-memory read burst landed on chip. Unlike
    /// [`Ev::MemData`] this can precede the tag check's verdict (the
    /// speculative MAP-I prefetch), so the handler routes by the
    /// request's fetch state.
    MemArrive { req: RequestId },
}

/// An L2-miss waiter (who to answer when the block arrives).
#[derive(Clone, Copy, Debug)]
struct Waiter {
    core: u8,
    token: u64,
    is_store: bool,
}

/// Progress of a demand read's main-memory fetch. The flat backend
/// knows the completion time the instant a fetch launches; the
/// cycle-level backend learns it only when the device actually issues
/// the access, so the two carry different state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fetch {
    /// No memory fetch launched yet.
    None,
    /// Flat backend: the fetch completes at this instant.
    FlatAt(SimTime),
    /// Cycle backend: fetch queued/in flight; tag check not resolved.
    CyclePending,
    /// Cycle backend: fetch in flight and the tag check already said
    /// miss — answer the cores the moment the data arrives.
    CyclePendingMissed,
    /// Cycle backend: data arrived before the tag check resolved.
    CycleDone,
}

/// Bookkeeping for an outstanding demand read.
#[derive(Clone, Copy, Debug)]
struct ReadState {
    block: u64,
    app: u8,
    arrival: SimTime,
    predicted_hit: bool,
    /// Main-memory fetch progress (speculative or post-miss).
    fetch: Fetch,
}

/// Slab slot for one in-flight cache request. A slot lives from
/// submission until both the FSM has finished *and* (for demand reads)
/// the read bookkeeping has been consumed — whichever comes last — so a
/// `RequestId` stays valid for exactly as long as any event can still
/// reference it.
struct ReqState {
    /// The admitted request's state machine (`None` before admission and
    /// again after it signals `done`).
    fsm: Option<RequestFsm>,
    /// Demand-read bookkeeping; `None` for writebacks/refills and after
    /// the read has been answered.
    read: Option<ReadState>,
    /// Set once the FSM has signalled `done`.
    fsm_done: bool,
}

/// Static event domain for the sharded engine: which island of the
/// system an event's handler touches first. Domain 0 is the CPU/uncore
/// front-end, domains `1..=channels` are the DRAM-cache channels, and
/// `1 + channels` is the main-memory device.
#[inline]
fn domain_of(ev: &Ev, channels: u32) -> u16 {
    match ev {
        Ev::CoreWake(_) | Ev::Deliver { .. } => 0,
        Ev::Pump(ch) | Ev::AccessDone { ch, .. } => 1 + *ch as u16,
        Ev::MemData { .. } | Ev::MemPump | Ev::MemFetch { .. } | Ev::MemArrive { .. } => {
            1 + channels as u16
        }
    }
}

/// Domain-sharded event storage with a deterministic min-merge.
///
/// Events are tagged with their static domain ([`domain_of`]) at the
/// schedule site and land in one of `shards` calendar queues
/// (round-robin by domain); `pop` merges the shard heads by the global
/// `(time, seq)` key, so delivery order — and therefore every result —
/// is bit-identical to the single-queue engines.
///
/// **Why the merge runs on one thread here.** The system's cross-domain
/// events carry zero lookahead (an `AccessDone` wakes a core *at* the
/// same instant) and the handlers share one `Uncore`, so a conservative
/// parallel schedule has an empty safe window at this boundary: running
/// the shards on threads could never overlap handler execution without
/// changing results. This engine is the domain-tagging integration
/// point and measures the partition/merge overhead floor; the parallel
/// protocol itself — per-shard threads, SPSC rings, safe-time bounds —
/// lives in [`dca_sim_core::shardloop`] and wins wall clock where
/// domains are genuinely decoupled by a positive lookahead (see the
/// `sharded` section of `BENCH_engine.json`).
struct ShardedEngine {
    shards: Vec<EventQueue<Ev>>,
    channels: u32,
    /// Global insertion sequence: the cross-shard tiebreak key.
    next_seq: u64,
    now: SimTime,
}

impl ShardedEngine {
    fn new(threads: u8, channels: u32, slot_shift: u32) -> Self {
        // One front-end domain + one per channel + main memory.
        let ndomains = 2 + channels as usize;
        let nshards = (threads as usize).clamp(1, ndomains);
        ShardedEngine {
            shards: (0..nshards)
                .map(|_| EventQueue::with_slot_shift(slot_shift))
                .collect(),
            channels,
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    #[inline]
    fn push(&mut self, at: SimTime, ev: Ev) {
        let shard = domain_of(&ev, self.channels) as usize % self.shards.len();
        let key = self.next_seq;
        self.next_seq += 1;
        self.shards[shard].push_keyed(at, key, ev);
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (i, q) in self.shards.iter().enumerate() {
            if let Some(k) = q.peek_key() {
                if best.is_none_or(|(_, bk)| k < bk) {
                    best = Some((i, k));
                }
            }
        }
        let (i, _) = best?;
        let popped = self.shards[i].pop();
        if let Some((t, _)) = popped {
            self.now = t;
        }
        popped
    }

    #[inline]
    fn counters(&self) -> (u64, u64) {
        self.shards
            .iter()
            .map(|q| q.counters())
            .fold((0, 0), |(p, o), (a, b)| (p + a, o + b))
    }
}

/// The event engine, selectable per run ([`EngineSel`]): the calendar
/// queue at a fixed or self-tuning slot width, the original binary
/// heap, or domain-sharded storage. All deliver in the same total
/// `(time, seq)` order, so the choice cannot affect results — only
/// wall-clock speed.
enum Engine {
    Calendar(EventQueue<Ev>),
    Heap(BaselineEventQueue<Ev>),
    Sharded(ShardedEngine),
}

impl Engine {
    #[inline]
    fn now(&self) -> SimTime {
        match self {
            Engine::Calendar(q) => q.now(),
            Engine::Heap(q) => q.now(),
            Engine::Sharded(q) => q.now,
        }
    }

    #[inline]
    fn push(&mut self, at: SimTime, ev: Ev) {
        match self {
            Engine::Calendar(q) => q.push(at, ev),
            Engine::Heap(q) => q.push(at, ev),
            Engine::Sharded(q) => q.push(at, ev),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, Ev)> {
        match self {
            Engine::Calendar(q) => q.pop(),
            Engine::Heap(q) => q.pop(),
            Engine::Sharded(q) => q.pop(),
        }
    }

    #[inline]
    fn counters(&self) -> (u64, u64) {
        match self {
            Engine::Calendar(q) => q.counters(),
            Engine::Heap(q) => q.counters(),
            Engine::Sharded(q) => q.counters(),
        }
    }
}

/// Everything below the cores. Split from [`System`] so the core loop can
/// borrow it as the cores' memory port.
struct Uncore {
    cfg: SystemConfig,
    geom: CacheGeometry,
    l1: Vec<SramCache>,
    l2: SramCache,
    mshr: Mshr<Waiter>,
    mshr_overflow: VecDeque<(u64, Waiter, u32)>,
    channels: Vec<DramChannel>,
    ctrls: Vec<ChannelController>,
    rrpc: Rrpc,
    tags: TagArray,
    predictor: MapI,
    memory: MainMemory,
    /// Per-request state, keyed by `RequestId` (a packed [`SlabKey`]).
    requests: Slab<ReqState>,
    /// Per-access routing metadata, keyed by access id (also a slab key).
    accesses: Slab<AccessMeta>,
    pending_reqs: Vec<VecDeque<CacheRequest>>,
    inflight: Vec<u32>,
    poll_armed: Vec<bool>,
    /// Earliest future [`Ev::MemPump`] currently queued (cycle backend
    /// only). Later, stale pump events may also exist — they fire as
    /// cheap no-ops — but an armed instant is never pushed twice, so
    /// repeated device enqueues before a wakeup cannot stack events.
    mem_pump_armed_at: Option<SimTime>,
    /// Reusable completion buffer for the cycle backend's scheduler.
    mem_arrivals: Vec<MemArrival>,
    /// Events produced while the event queue is not borrowable
    /// (inside the cores' port callbacks).
    outbox: Vec<(SimTime, Ev)>,
    /// Banshee fill gate: per-page (row-frame) saturating frequency
    /// counters. Consulted only when the design is [`Design::Banshee`];
    /// a miss fill is admitted only once its page has proven itself hot
    /// enough, so cold pages never spend fill bandwidth.
    fill_counters: FastHashMap<u64, u8>,
    // Statistics.
    latency: LatencyStat,
    cache_read_hits: u64,
    cache_read_misses: u64,
    wb_requests: u64,
    refill_requests: u64,
    cache_fills: u64,
    fill_bypasses: u64,
    wasted_prefetches: u64,
    timeline: Option<Timeline>,
}

impl Uncore {
    fn l1_latency(&self) -> Duration {
        Duration::from_cpu_cycles(self.cfg.l1_lat_cycles)
    }

    fn l2_latency(&self) -> Duration {
        Duration::from_cpu_cycles(self.cfg.l2_lat_cycles)
    }

    /// Install `block` into a core's L1, spilling dirty victims into L2.
    fn fill_l1(&mut self, core: u8, block: u64, dirty: bool) {
        if let Some((victim, vdirty)) = self.l1[core as usize].allocate(block, dirty) {
            if vdirty {
                // L1 victim writes back into the (almost surely present)
                // L2 copy; if L2 already lost it, the update is dropped —
                // data values are not modelled, only traffic.
                self.l2.probe(victim, true);
            }
        }
    }

    /// Allocate a request slot; the returned id is its packed slab key.
    fn alloc_request(&mut self, read: Option<ReadState>) -> RequestId {
        self.requests
            .insert(ReqState {
                fsm: None,
                read,
                fsm_done: false,
            })
            .raw()
    }

    /// Free a request slot once nothing can reference it any more.
    fn maybe_free_request(&mut self, id: RequestId) {
        let key = SlabKey::from(id);
        if let Some(slot) = self.requests.get(key) {
            if slot.fsm_done && slot.read.is_none() {
                self.requests.remove(key);
            }
        }
    }

    /// Overwrite a live demand-read's main-memory fetch state.
    fn set_fetch(&mut self, req: RequestId, fetch: Fetch) {
        self.requests
            .get_mut(SlabKey::from(req))
            .expect("request slot live")
            .read
            .as_mut()
            .expect("read state live")
            .fetch = fetch;
    }

    /// Create and queue a demand-read request for `block`.
    fn submit_read(&mut self, block: u64, app: u8, pc: u32, at: SimTime) {
        let predicted_hit = if self.cfg.predictor {
            self.predictor.predict_hit(pc)
        } else {
            true
        };
        // MAP-I predicted a miss: overlap the memory fetch with the tag
        // check (the Alloy-style hit-speculation path). The flat fetch
        // launches here; the cycle fetch needs the request id, so it is
        // deferred to a MemFetch event below.
        let fetch = if !predicted_hit && !self.memory.is_cycle() {
            Fetch::FlatAt(self.memory.read(at))
        } else {
            Fetch::None
        };
        let id = self.alloc_request(Some(ReadState {
            block,
            app,
            arrival: at,
            predicted_hit,
            fetch,
        }));
        if !predicted_hit && self.memory.is_cycle() {
            self.outbox.push((at, Ev::MemFetch { req: id }));
            self.set_fetch(id, Fetch::CyclePending);
        }
        let req = CacheRequest {
            id,
            kind: CacheReqKind::Read,
            block,
            app,
            pc,
        };
        let ch = self.geom.place(block).loc.channel;
        self.pending_reqs[ch as usize].push_back(req);
        self.outbox.push((at, Ev::Pump(ch as u8)));
    }

    /// Create and queue a writeback request for `block`.
    fn submit_writeback(&mut self, block: u64, app: u8, at: SimTime) {
        let id = self.alloc_request(None);
        self.wb_requests += 1;
        let req = CacheRequest {
            id,
            kind: CacheReqKind::Writeback,
            block,
            app,
            pc: 0,
        };
        let ch = self.geom.place(block).loc.channel;
        self.pending_reqs[ch as usize].push_back(req);
        self.outbox.push((at, Ev::Pump(ch as u8)));
    }

    /// Create and queue a refill request for `block`. Under the Banshee
    /// design the fill is frequency-gated: a cold page's refills bypass
    /// the cache entirely (the demand data already answered the cores),
    /// saving the fill's DRAM-cache write traffic. Warm-up is
    /// design-independent and never passes through this gate.
    fn submit_refill(&mut self, block: u64, app: u8, at: SimTime) {
        if self.cfg.design == Design::Banshee {
            let frame = self.geom.place(block).frame;
            let count = self.fill_counters.entry(frame).or_insert(0);
            if *count < self.cfg.banshee.counter_cap {
                *count += 1;
            }
            if *count < self.cfg.banshee.fill_threshold {
                self.fill_bypasses += 1;
                return;
            }
        }
        self.cache_fills += 1;
        let id = self.alloc_request(None);
        self.refill_requests += 1;
        let req = CacheRequest {
            id,
            kind: CacheReqKind::Refill,
            block,
            app,
            pc: 0,
        };
        let ch = self.geom.place(block).loc.channel;
        self.pending_reqs[ch as usize].push_back(req);
        self.outbox.push((at, Ev::Pump(ch as u8)));
    }
}

impl MemPort for Uncore {
    fn access(&mut self, op: MemOp, at: SimTime) -> PortResponse {
        // L1.
        if self.l1[op.core as usize].probe(op.block, op.is_store) {
            return PortResponse::Complete(at + self.l1_latency());
        }
        let l2_time = at + self.l1_latency() + self.l2_latency();
        // Shared L2.
        if self.l2.probe(op.block, op.is_store) {
            self.fill_l1(op.core, op.block, op.is_store);
            return PortResponse::Complete(l2_time);
        }
        // L2 miss: take an MSHR and (for the first miss) go to the DRAM
        // cache.
        let waiter = Waiter {
            core: op.core,
            token: op.token,
            is_store: op.is_store,
        };
        match self.mshr.allocate(op.block, waiter) {
            MshrOutcome::Merged => PortResponse::Pending,
            MshrOutcome::Full => {
                self.mshr_overflow.push_back((op.block, waiter, op.pc));
                PortResponse::Pending
            }
            MshrOutcome::New => {
                self.submit_read(op.block, op.core, op.pc, l2_time);
                PortResponse::Pending
            }
        }
    }
}

/// The complete simulated machine.
pub struct System {
    cfg: SystemConfig,
    cores: Vec<Core>,
    bench_names: Vec<String>,
    uncore: Uncore,
    queue: Engine,
}

/// The design-independent half of the hierarchy: everything functional
/// warm-up touches. Built cold, warmed in place, then either assembled
/// into a [`System`] or captured as a [`WarmState`].
struct HierState {
    l1: Vec<SramCache>,
    l2: SramCache,
    tags: TagArray,
    predictor: MapI,
    gens: Vec<OpStream>,
}

impl System {
    /// Build a system running `benches` (one per core, 1–4 of them) under
    /// `cfg`, and perform the functional warm-up. Equivalent to (but
    /// cheaper than) `from_warm` over a fresh [`System::capture_warm`].
    pub fn new(cfg: SystemConfig, benches: &[Benchmark]) -> Self {
        let mut hier = Self::build_hier(&cfg, benches);
        Self::warmup(&cfg, &mut hier);
        Self::assemble(cfg, benches, hier)
    }

    /// Phase 1 + 2 only (build + functional warm-up), capturing the
    /// warmed hierarchy as a reusable, fingerprint-keyed [`WarmState`]
    /// instead of entering the timing phase.
    pub fn capture_warm(cfg: SystemConfig, benches: &[Benchmark]) -> WarmState {
        let mut hier = Self::build_hier(&cfg, benches);
        Self::warmup(&cfg, &mut hier);
        WarmState::new(
            &cfg,
            benches,
            hier.l1,
            hier.l2,
            hier.tags,
            hier.predictor,
            hier.gens,
        )
    }

    /// Build a system from a previously captured [`WarmState`], skipping
    /// the functional warm-up entirely. The resulting run is bit-for-bit
    /// identical to a cold [`System::new`] with the same configuration
    /// (`tests/warm_checkpoint_equivalence.rs` holds the line).
    ///
    /// # Panics
    /// Panics if `warm` was captured for a different warm-up — i.e. its
    /// fingerprint does not match `(cfg, benches)` — or if its component
    /// shapes disagree with the configured geometry (possible only for a
    /// hand-altered on-disk blob, since the fingerprint covers geometry).
    pub fn from_warm(cfg: SystemConfig, benches: &[Benchmark], warm: &WarmState) -> Self {
        assert!(
            warm.matches(&cfg, benches),
            "warm-state fingerprint mismatch: captured {:#018x}, need {:#018x}",
            warm.fingerprint(),
            WarmState::fingerprint_for(&cfg, benches)
        );
        let geom = CacheGeometry::new(cfg.org_kind, cfg.dram_org, cfg.mapping);
        assert_eq!(warm.l1.len(), benches.len(), "warm-state core count");
        assert_eq!(
            (warm.tags.sets(), warm.tags.ways(), warm.tags.policy()),
            (geom.num_sets(), cfg.org_kind.ways(), cfg.replacement),
            "warm-state tag geometry"
        );
        let hier = HierState {
            l1: warm.l1.clone(),
            l2: warm.l2.clone(),
            tags: warm.tags.clone(),
            predictor: warm.predictor.clone(),
            gens: warm.gens.clone(),
        };
        Self::assemble(cfg, benches, hier)
    }

    /// Phase 1: construct the cold, design-independent hierarchy.
    /// Generators get disjoint 4 GiB-aligned block-address regions so
    /// multiprogrammed workloads never share.
    fn build_hier(cfg: &SystemConfig, benches: &[Benchmark]) -> HierState {
        assert!(
            !benches.is_empty() && benches.len() <= 4,
            "1 to 4 cores supported"
        );
        let geom = CacheGeometry::new(cfg.org_kind, cfg.dram_org, cfg.mapping);
        let seeds = SeedSplitter::new(cfg.seed);
        HierState {
            l1: benches.iter().map(|_| SramCache::paper_l1()).collect(),
            l2: SramCache::paper_l2(),
            tags: TagArray::with_policy(geom.num_sets(), cfg.org_kind.ways(), cfg.replacement),
            predictor: MapI::paper(),
            gens: benches
                .iter()
                .enumerate()
                .map(|(i, b)| {
                    let base = (i as u64 + 1) << 26;
                    OpStream::for_bench(*b, base, seeds.split("core").split_index(i as u64).seed())
                })
                .collect(),
        }
    }

    /// Phase 3: wire the (cold- or checkpoint-) warmed hierarchy into
    /// the full timed system.
    fn assemble(cfg: SystemConfig, benches: &[Benchmark], hier: HierState) -> Self {
        if let Err(msg) = cfg.validate() {
            panic!("invalid SystemConfig: {msg}");
        }
        let geom = CacheGeometry::new(cfg.org_kind, cfg.dram_org, cfg.mapping);
        let uncore = Uncore {
            cfg,
            geom,
            l1: hier.l1,
            l2: hier.l2,
            mshr: Mshr::new(cfg.mshrs),
            mshr_overflow: VecDeque::new(),
            channels: (0..cfg.dram_org.channels)
                .map(|_| DramChannel::new(cfg.timing, &cfg.dram_org))
                .collect(),
            ctrls: (0..cfg.dram_org.channels)
                .map(|c| ChannelController::new(&cfg, c))
                .collect(),
            rrpc: Rrpc::new(cfg.dram_org.total_banks()),
            tags: hier.tags,
            predictor: hier.predictor,
            memory: MainMemory::build(&cfg.main_mem),
            requests: Slab::with_capacity(256),
            accesses: Slab::with_capacity(512),
            pending_reqs: (0..cfg.dram_org.channels)
                .map(|_| VecDeque::new())
                .collect(),
            inflight: vec![0; cfg.dram_org.channels as usize],
            poll_armed: vec![false; cfg.dram_org.channels as usize],
            mem_pump_armed_at: None,
            mem_arrivals: Vec::new(),
            outbox: Vec::new(),
            fill_counters: FastHashMap::default(),
            latency: LatencyStat::new(),
            cache_read_hits: 0,
            cache_read_misses: 0,
            wb_requests: 0,
            refill_requests: 0,
            cache_fills: 0,
            fill_bypasses: 0,
            wasted_prefetches: 0,
            timeline: cfg.record_timeline.then(|| Timeline::new(100_000)),
        };

        let cores = hier
            .gens
            .into_iter()
            .enumerate()
            .map(|(i, gen)| Core::new(i as u8, CoreConfig::paper(cfg.target_insts), gen))
            .collect();

        System {
            cfg,
            cores,
            bench_names: benches.iter().map(|b| b.name().to_string()).collect(),
            uncore,
            queue: match cfg.engine {
                EngineSel::Heap => Engine::Heap(BaselineEventQueue::new()),
                EngineSel::Calendar => {
                    Engine::Calendar(EventQueue::with_slot_shift(cfg.event_slot_shift))
                }
                EngineSel::CalendarAdaptive => {
                    Engine::Calendar(EventQueue::adaptive_from(cfg.event_slot_shift))
                }
                EngineSel::Sharded { threads } => Engine::Sharded(ShardedEngine::new(
                    threads,
                    cfg.dram_org.channels,
                    cfg.event_slot_shift,
                )),
            },
        }
    }

    /// Phase 2: functional (timing-free) cache warm-up. Runs each
    /// generator's prefix through the caches with no timing, so the
    /// 256 MB cache starts warm (the paper fast-forwards 4 B
    /// instructions with warm caches). Touches only [`HierState`] —
    /// the design-independence the warm-state checkpoint relies on.
    fn warmup(cfg: &SystemConfig, hier: &mut HierState) {
        let geom = CacheGeometry::new(cfg.org_kind, cfg.dram_org, cfg.mapping);
        for _ in 0..cfg.warmup_ops {
            for (i, gen) in hier.gens.iter_mut().enumerate() {
                let op = gen.next_op();
                if hier.l1[i].probe(op.block, op.is_store) {
                    continue;
                }
                if !hier.l2.probe(op.block, op.is_store) {
                    // Warm the DRAM-cache tags.
                    let p = geom.place(op.block);
                    match hier.tags.lookup(p.set, p.tag) {
                        Some(w) => hier.tags.touch(p.set, w),
                        None => {
                            hier.tags.insert(p.set, p.tag, false);
                        }
                    }
                    if let Some((victim, vdirty)) = hier.l2.allocate(op.block, op.is_store) {
                        if vdirty {
                            let q = geom.place(victim);
                            match hier.tags.lookup(q.set, q.tag) {
                                Some(w) => hier.tags.set_dirty(q.set, w, true),
                                None => {
                                    hier.tags.insert(q.set, q.tag, true);
                                }
                            }
                        }
                    }
                }
                if let Some((victim, vdirty)) = hier.l1[i].allocate(op.block, op.is_store) {
                    if vdirty {
                        hier.l2.probe(victim, true);
                    }
                }
            }
        }
    }

    /// Drain deferred events produced inside port callbacks.
    fn drain_outbox(&mut self) {
        let now = self.queue.now();
        for (at, ev) in self.uncore.outbox.drain(..) {
            self.queue.push(at.max(now), ev);
        }
    }

    /// Advance core `i` and flush whatever it produced.
    fn wake_core(&mut self, i: u8, now: SimTime) {
        let state = self.cores[i as usize].advance(&mut self.uncore, now);
        let _ = state; // Waiting/Finished both handled by future events.
        self.drain_outbox();
    }

    /// Admission + scheduling for channel `ch`.
    fn pump(&mut self, ch: u8, now: SimTime) {
        self.uncore.poll_armed[ch as usize] = false;

        // Admit pending requests while the queues have room.
        loop {
            if !self.uncore.ctrls[ch as usize].can_admit() {
                break;
            }
            let Some(req) = self.uncore.pending_reqs[ch as usize].pop_front() else {
                break;
            };
            let (fsm, specs) = RequestFsm::start(req, &self.uncore.geom);
            self.uncore
                .requests
                .get_mut(SlabKey::from(req.id))
                .expect("request slot live until admission")
                .fsm = Some(fsm);
            for spec in specs {
                let id = self
                    .uncore
                    .accesses
                    .insert(AccessMeta {
                        request: req.id,
                        role: spec.role,
                    })
                    .raw();
                self.uncore.ctrls[ch as usize].enqueue(id, spec, req.kind, req.app, now);
            }
        }

        // Issue as much as the design allows.
        loop {
            let uncore = &mut self.uncore;
            let Some(issued) = uncore.ctrls[ch as usize].schedule_one(
                &mut uncore.channels[ch as usize],
                &mut uncore.rrpc,
                now,
            ) else {
                break;
            };
            uncore.inflight[ch as usize] += 1;
            if let Some(tl) = uncore.timeline.as_mut() {
                let meta = *uncore
                    .accesses
                    .get(SlabKey::from(issued.entry.id))
                    .expect("issued access has metadata");
                let req_kind = uncore
                    .requests
                    .get(SlabKey::from(meta.request))
                    .and_then(|r| r.fsm.as_ref())
                    .map(|f| f.request().kind)
                    .unwrap_or(CacheReqKind::Read);
                tl.push(TimelineEntry {
                    burst_start: issued.info.burst_start,
                    burst_end: issued.info.burst_end,
                    channel: ch as u32,
                    bank: issued.entry.access.bank,
                    row: issued.entry.access.row,
                    kind: issued.entry.access.kind,
                    role: meta.role,
                    req_kind,
                    class: issued.entry.class,
                    outcome: issued.info.outcome,
                });
            }
            self.queue.push(
                issued.info.burst_end,
                Ev::AccessDone {
                    ch,
                    access_id: issued.entry.id,
                },
            );
        }

        // Poll fallback: queued work, nothing in flight, nothing
        // schedulable right now (e.g. OFS holding LRs). Re-pump shortly —
        // conditions change only with PR traffic or time.
        let u = &mut self.uncore;
        if u.inflight[ch as usize] == 0
            && (u.ctrls[ch as usize].backlog() > 0 || !u.pending_reqs[ch as usize].is_empty())
            && !u.poll_armed[ch as usize]
        {
            u.poll_armed[ch as usize] = true;
            self.queue.push(now + Duration::from_ns(20), Ev::Pump(ch));
        }
    }

    /// Answer the cores waiting on `block` and install it in L2.
    fn fill_l2_and_respond(&mut self, block: u64, app: u8, now: SimTime) {
        let waiters = self.uncore.mshr.complete(block);
        let dirty = waiters.iter().any(|w| w.is_store);
        if let Some((victim, vdirty)) = self.uncore.l2.allocate(block, dirty) {
            if vdirty {
                self.spill_l2_victim(victim, app, now);
            }
        }
        for w in waiters {
            self.uncore.fill_l1(w.core, block, w.is_store);
            if !w.is_store {
                self.queue.push(
                    now,
                    Ev::Deliver {
                        core: w.core,
                        token: w.token,
                    },
                );
            }
        }
        // MSHRs freed: retry overflowed misses.
        while let Some((blk, waiter, pc)) = self.uncore.mshr_overflow.pop_front() {
            match self.uncore.mshr.allocate(blk, waiter) {
                MshrOutcome::New => {
                    self.uncore.submit_read(blk, waiter.core, pc, now);
                }
                MshrOutcome::Merged => {}
                MshrOutcome::Full => {
                    self.uncore.mshr_overflow.push_front((blk, waiter, pc));
                    break;
                }
            }
        }
        self.drain_outbox();
    }

    /// An L2 dirty victim leaves for the DRAM cache — with the Lee
    /// DRAM-aware policy, row-mates ride along (§VII, Fig 19).
    fn spill_l2_victim(&mut self, victim: u64, app: u8, now: SimTime) {
        self.uncore.submit_writeback(victim, app, now);
        if self.cfg.lee_writeback {
            let geom = self.uncore.geom;
            let blocks_per_row = match self.cfg.org_kind {
                OrgKind::SetAssoc { .. } => 4,
                OrgKind::DirectMapped => 60,
            };
            let mates = collect_same_row_dirty(
                &self.uncore.l2,
                victim,
                |b| geom.place(b).frame,
                blocks_per_row,
                8,
            );
            for mate in mates {
                if self.uncore.l2.clean(mate) {
                    self.uncore.submit_writeback(mate, app, now);
                }
            }
        }
        self.drain_outbox();
    }

    /// Cycle-backend scheduler pump: issue everything whose bank is
    /// free, turn read completions into [`Ev::MemArrive`] events, and
    /// arm the next pump at the device's earliest bank-free instant —
    /// unless an equal-or-earlier pump is already queued.
    fn mem_pump(&mut self, now: SimTime) {
        let mut arrivals = std::mem::take(&mut self.uncore.mem_arrivals);
        arrivals.clear();
        self.uncore.memory.schedule(now, &mut arrivals);
        for a in arrivals.drain(..) {
            self.queue.push(a.at, Ev::MemArrive { req: a.token });
        }
        self.uncore.mem_arrivals = arrivals;
        if let Some(at) = self.uncore.memory.next_wakeup() {
            let earlier = self.uncore.mem_pump_armed_at.is_none_or(|t| at < t);
            if earlier {
                self.uncore.mem_pump_armed_at = Some(at);
                self.queue.push(at, Ev::MemPump);
            }
        }
    }

    /// Launch a deferred speculative fetch (cycle backend). The request
    /// can already have retired as a hit — then the fetch is simply
    /// never sent, sparing the device the wasted bandwidth a flat model
    /// cannot avoid spending.
    fn mem_fetch(&mut self, req: RequestId, now: SimTime) {
        let key = SlabKey::from(req);
        let Some(slot) = self.uncore.requests.get(key) else {
            return;
        };
        let Some(rs) = slot.read else { return };
        if matches!(rs.fetch, Fetch::CyclePending | Fetch::CyclePendingMissed) {
            self.uncore.memory.enqueue_read(req, rs.block, now);
            self.mem_pump(now);
        }
    }

    /// A cycle-level main-memory read landed on chip. If the tag check
    /// already concluded miss, answer the cores and install the block;
    /// if it is still in flight, just record the data as ready; if the
    /// request retired as a hit meanwhile, the speculative fetch was
    /// wasted bandwidth and the arrival is dropped.
    fn mem_arrive(&mut self, req: RequestId, now: SimTime) {
        let key = SlabKey::from(req);
        let Some(slot) = self.uncore.requests.get_mut(key) else {
            return; // request fully retired (hit): wasted prefetch
        };
        let Some(rs) = slot.read.as_mut() else {
            return; // read answered from the cache; fetch was wasted
        };
        match rs.fetch {
            Fetch::CyclePending => rs.fetch = Fetch::CycleDone,
            Fetch::CyclePendingMissed => {
                let (block, app) = (rs.block, rs.app);
                self.finish_demand_read(req, now);
                self.uncore.submit_refill(block, app, now);
                self.drain_outbox();
            }
            _ => unreachable!("cycle arrival without a pending cycle fetch"),
        }
    }

    /// A demand read has its data: record latency and answer the cores.
    fn finish_demand_read(&mut self, req: RequestId, now: SimTime) {
        let rs = self
            .uncore
            .requests
            .get_mut(SlabKey::from(req))
            .expect("request slot live")
            .read
            .take()
            .expect("read state must exist");
        self.uncore.maybe_free_request(req);
        self.uncore.latency.record(rs.arrival, now);
        self.fill_l2_and_respond(rs.block, rs.app, now);
    }

    /// Handle one completed DRAM access.
    fn access_done(&mut self, ch: u8, access_id: u64, now: SimTime) {
        self.uncore.inflight[ch as usize] -= 1;
        let meta = self
            .uncore
            .accesses
            .remove(SlabKey::from(access_id))
            .expect("access metadata");
        let req_key = SlabKey::from(meta.request);
        let geom = self.uncore.geom;
        let (out, req_kind, req_app, req_pc) = {
            let slot = self
                .uncore
                .requests
                .get_mut(req_key)
                .expect("request slot live");
            let fsm = slot.fsm.as_mut().expect("request FSM");
            let out = fsm.on_access_done(meta.role, &mut self.uncore.tags, &geom);
            let r = fsm.request();
            (out, r.kind, r.app, r.pc)
        };

        // Follow-up accesses.
        for spec in &out.enqueue {
            let id = self
                .uncore
                .accesses
                .insert(AccessMeta {
                    request: meta.request,
                    role: spec.role,
                })
                .raw();
            self.uncore.ctrls[ch as usize].enqueue(id, *spec, req_kind, req_app, now);
        }

        // Predictor training + hit statistics (demand reads only).
        if let Some(hit) = out.hit_known {
            if req_kind == CacheReqKind::Read {
                if self.cfg.predictor {
                    self.uncore.predictor.update(req_pc, hit);
                    let predicted = self.uncore.requests[req_key]
                        .read
                        .expect("read state live until answered")
                        .predicted_hit;
                    self.uncore.predictor.record_outcome(predicted, hit);
                    if hit && !predicted {
                        self.uncore.wasted_prefetches += 1;
                    }
                }
                if hit {
                    self.uncore.cache_read_hits += 1;
                } else {
                    self.uncore.cache_read_misses += 1;
                }
            }
        }

        // Dirty victim evicted from the DRAM cache → main memory. The
        // cycle-backend pump runs once at the end of this handler, after
        // every enqueue this access produced.
        let mut pump_mem = false;
        if let Some(victim) = out.evict_dirty {
            if self.uncore.memory.is_cycle() {
                self.uncore.memory.enqueue_write(victim, now);
                pump_mem = true;
            } else {
                self.uncore.memory.write(now);
            }
        }

        if out.respond_hit {
            self.finish_demand_read(meta.request, now);
        }
        if out.respond_miss {
            let rs = self.uncore.requests[req_key]
                .read
                .expect("read state live until answered");
            match rs.fetch {
                Fetch::FlatAt(t) if t <= now => {
                    // Speculative fetch already landed: answer now, and
                    // install via a refill request.
                    self.finish_demand_read(meta.request, now);
                    self.uncore.submit_refill(rs.block, rs.app, now);
                }
                Fetch::FlatAt(t) => {
                    self.queue.push(t, Ev::MemData { req: meta.request });
                }
                Fetch::None if !self.uncore.memory.is_cycle() => {
                    let t = self.uncore.memory.read(now);
                    self.queue.push(t, Ev::MemData { req: meta.request });
                }
                Fetch::None => {
                    // Cycle backend, no speculative fetch: queue it now
                    // and answer when the device delivers.
                    self.uncore.memory.enqueue_read(meta.request, rs.block, now);
                    self.uncore
                        .set_fetch(meta.request, Fetch::CyclePendingMissed);
                    pump_mem = true;
                }
                Fetch::CyclePending => {
                    // Speculative fetch still in flight: flag the miss so
                    // the arrival answers the cores directly.
                    self.uncore
                        .set_fetch(meta.request, Fetch::CyclePendingMissed);
                }
                Fetch::CycleDone => {
                    // Speculative fetch already landed.
                    self.finish_demand_read(meta.request, now);
                    self.uncore.submit_refill(rs.block, rs.app, now);
                }
                Fetch::CyclePendingMissed => {
                    unreachable!("miss resolved twice for one request")
                }
            }
        }
        if out.done {
            let slot = self
                .uncore
                .requests
                .get_mut(req_key)
                .expect("request slot live");
            slot.fsm = None;
            slot.fsm_done = true;
            self.uncore.maybe_free_request(meta.request);
        }

        if pump_mem {
            self.mem_pump(now);
        }
        self.drain_outbox();
        self.pump(ch, now);
    }

    /// Run to completion and report.
    pub fn run(mut self) -> SystemReport {
        for i in 0..self.cores.len() {
            self.queue.push(SimTime::ZERO, Ev::CoreWake(i as u8));
        }
        while let Some((now, ev)) = self.queue.pop() {
            match ev {
                Ev::CoreWake(i) => self.wake_core(i, now),
                Ev::Deliver { core, token } => {
                    self.cores[core as usize].on_data(token, now);
                    self.wake_core(core, now);
                }
                Ev::Pump(ch) => self.pump(ch, now),
                Ev::AccessDone { ch, access_id } => self.access_done(ch, access_id, now),
                Ev::MemData { req } => {
                    let rs = self.uncore.requests[SlabKey::from(req)]
                        .read
                        .expect("read state live until answered");
                    self.finish_demand_read(req, now);
                    self.uncore.submit_refill(rs.block, rs.app, now);
                    self.drain_outbox();
                }
                Ev::MemPump => {
                    // The tracked wakeup has fired; a stale later pump
                    // leaves the tracking untouched.
                    if self.uncore.mem_pump_armed_at == Some(now) {
                        self.uncore.mem_pump_armed_at = None;
                    }
                    self.mem_pump(now);
                }
                Ev::MemFetch { req } => self.mem_fetch(req, now),
                Ev::MemArrive { req } => self.mem_arrive(req, now),
            }
            if self.cores.iter().all(|c| c.finished()) {
                break;
            }
        }
        assert!(
            self.cores.iter().all(|c| c.finished()),
            "event queue drained with unfinished cores — model deadlock"
        );
        self.report()
    }

    fn report(self) -> SystemReport {
        let cores = self
            .cores
            .iter()
            .zip(&self.bench_names)
            .map(|(c, name)| CoreReport {
                bench: name.clone(),
                insts: c.insts(),
                cycles: c.cycles(),
                ipc: c.ipc(),
            })
            .collect();
        let channels = self
            .uncore
            .channels
            .iter()
            .zip(&self.uncore.ctrls)
            .map(|(ch, ctrl)| ChannelReport {
                reads: ch.stats().reads.get(),
                writes: ch.stats().writes.get(),
                turnarounds: ch.bus().turnarounds(),
                accesses_per_turnaround: ch.bus().accesses_per_turnaround(),
                read_row_hit_rate: ch.stats().read_row_hit_rate(),
                read_row_conflicts: ch.stats().read_row_conflicts.get(),
                ctrl: ctrl.stats().clone(),
            })
            .collect();
        SystemReport {
            cores,
            channels,
            l2_miss_latency: self.uncore.latency.clone(),
            cache_read_hits: self.uncore.cache_read_hits,
            cache_read_misses: self.uncore.cache_read_misses,
            predictor_accuracy: self.uncore.predictor.accuracy(),
            mem_reads: self.uncore.memory.reads(),
            mem_writes: self.uncore.memory.writes(),
            main_mem: self.uncore.memory.stats(),
            writeback_requests: self.uncore.wb_requests,
            refill_requests: self.uncore.refill_requests,
            cache_fills: self.uncore.cache_fills,
            fill_bypasses: self.uncore.fill_bypasses,
            end_time: self.queue.now(),
            events_processed: self.queue.counters().1,
            timeline: self.uncore.timeline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    fn tiny(design: Design, org: OrgKind) -> SystemReport {
        // Warm-up long enough to fill the shared 8 MB L2 (131 072 blocks)
        // so evictions — and hence writebacks — flow from the start.
        let cfg = SystemConfig::paper(design, org).scaled(60_000, 300_000);
        System::new(cfg, &[Benchmark::Libquantum, Benchmark::Mcf]).run()
    }

    #[test]
    fn cd_runs_to_completion_dm() {
        let r = tiny(Design::Cd, OrgKind::DirectMapped);
        assert!(r.cores.iter().all(|c| c.insts >= 60_000));
        assert!(r.cores.iter().all(|c| c.ipc > 0.0));
        assert!(r.end_time > SimTime::ZERO);
    }

    #[test]
    fn rod_runs_to_completion_dm() {
        let r = tiny(Design::Rod, OrgKind::DirectMapped);
        assert!(r.cores.iter().all(|c| c.insts >= 60_000));
    }

    #[test]
    fn dca_runs_to_completion_dm() {
        let r = tiny(Design::Dca, OrgKind::DirectMapped);
        assert!(r.cores.iter().all(|c| c.insts >= 60_000));
        // DCA must actually serve both classes.
        let pr: u64 = r.channels.iter().map(|c| c.ctrl.pr_served.get()).sum();
        let lr: u64 = r.channels.iter().map(|c| c.ctrl.lr_served.get()).sum();
        assert!(pr > 0, "priority reads served");
        assert!(lr > 0, "low-priority reads served");
    }

    #[test]
    fn all_designs_run_set_assoc() {
        for d in Design::ALL {
            let r = tiny(d, OrgKind::paper_set_assoc());
            assert!(
                r.cores.iter().all(|c| c.insts >= 60_000),
                "{} SA run incomplete",
                d.label()
            );
        }
    }

    #[test]
    fn banshee_gates_fills_and_stays_deterministic() {
        let r = tiny(Design::Banshee, OrgKind::DirectMapped);
        assert!(r.cores.iter().all(|c| c.insts >= 60_000));
        // The frequency gate must actually bypass some cold-page fills
        // while admitting the rest; admitted fills are exactly the
        // refills that reached the controller.
        assert!(r.fill_bypasses > 0, "cold pages should bypass the cache");
        assert!(r.cache_fills > 0, "hot pages should still be filled");
        assert_eq!(r.cache_fills, r.refill_requests);
        assert!(r.fill_bypass_rate() > 0.0 && r.fill_bypass_rate() < 1.0);
        let b = tiny(Design::Banshee, OrgKind::DirectMapped);
        assert_eq!(r.end_time, b.end_time);
        assert_eq!(r.fill_bypasses, b.fill_bypasses);
        // The other designs never consult the gate.
        let cd = tiny(Design::Cd, OrgKind::DirectMapped);
        assert_eq!(cd.fill_bypasses, 0);
        assert_eq!(cd.cache_fills, cd.refill_requests);
    }

    #[test]
    fn every_replacement_policy_runs_the_sa_org_deterministically() {
        // At unit-test scale the paper SA geometry (millions of tag
        // entries) never fills a set, so the policy layer — which may
        // only act at eviction time — must be *invisible*: every policy
        // completes, reruns bit-identically, and agrees with SRRIP
        // exactly. Divergence under set pressure is pinned down by the
        // TagArray unit and property tests, where pressure is cheap.
        let mk = |policy| {
            let mut cfg =
                SystemConfig::paper(Design::Cd, OrgKind::paper_set_assoc()).scaled(60_000, 300_000);
            cfg.replacement = policy;
            System::new(cfg, &[Benchmark::Libquantum, Benchmark::Mcf]).run()
        };
        use dca_dram_cache::ReplacementPolicy;
        let srrip = mk(ReplacementPolicy::Srrip);
        for policy in ReplacementPolicy::ALL {
            let r = mk(policy);
            assert!(r.cores.iter().all(|c| c.insts >= 60_000), "{policy:?}");
            assert_eq!(
                r.end_time,
                mk(policy).end_time,
                "{policy:?} must be deterministic"
            );
            assert_eq!(
                (r.end_time, r.events_processed, r.cache_read_hits),
                (
                    srrip.end_time,
                    srrip.events_processed,
                    srrip.cache_read_hits
                ),
                "{policy:?}: below eviction pressure every policy must match SRRIP"
            );
        }
    }

    #[test]
    fn traffic_is_plausible() {
        let r = tiny(Design::Cd, OrgKind::DirectMapped);
        let reads: u64 = r.channels.iter().map(|c| c.reads).sum();
        let writes: u64 = r.channels.iter().map(|c| c.writes).sum();
        assert!(reads > 100, "some DRAM-cache reads, got {reads}");
        assert!(writes > 100, "some DRAM-cache writes, got {writes}");
        assert!(r.l2_miss_latency.count() > 100, "L2 misses measured");
        assert!(r.writeback_requests > 0, "writebacks flow");
        assert!(r.cache_read_hits + r.cache_read_misses > 0);
    }

    #[test]
    fn warmup_makes_hits() {
        // Warm-up must exceed the 131 072-block shared L2 several times
        // over before far-reuse revisits can miss L2 and hit the DRAM
        // cache (the paper warms across 4 B fast-forwarded instructions).
        let cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(60_000, 400_000);
        let r = System::new(cfg, &[Benchmark::Libquantum, Benchmark::Mcf]).run();
        assert!(
            r.cache_hit_rate() > 0.1,
            "warmed cache should hit, rate={:.3}",
            r.cache_hit_rate()
        );
    }

    #[test]
    fn single_core_runs() {
        let cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped).scaled(40_000, 10_000);
        let r = System::new(cfg, &[Benchmark::Gcc]).run();
        assert_eq!(r.cores.len(), 1);
        assert!(r.cores[0].insts >= 40_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = tiny(Design::Dca, OrgKind::DirectMapped);
        let b = tiny(Design::Dca, OrgKind::DirectMapped);
        assert_eq!(a.cores[0].cycles, b.cores[0].cycles);
        assert_eq!(a.cores[1].cycles, b.cores[1].cycles);
        assert_eq!(a.mem_reads, b.mem_reads);
        let ra: Vec<u64> = a.channels.iter().map(|c| c.reads).collect();
        let rb: Vec<u64> = b.channels.iter().map(|c| c.reads).collect();
        assert_eq!(ra, rb);
    }

    #[test]
    #[should_panic(expected = "1 to 4 cores")]
    fn five_cores_rejected() {
        let cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped);
        System::new(cfg, &[Benchmark::Gcc; 5]);
    }

    #[test]
    fn from_warm_matches_cold_run() {
        let cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped).scaled(30_000, 60_000);
        let benches = [Benchmark::Libquantum, Benchmark::Mcf];
        let cold = System::new(cfg, &benches).run();
        let warm = System::capture_warm(cfg, &benches);
        let restored = System::from_warm(cfg, &benches, &warm).run();
        assert_eq!(cold.end_time, restored.end_time);
        assert_eq!(cold.events_processed, restored.events_processed);
        assert_eq!(cold.mem_reads, restored.mem_reads);
        assert_eq!(cold.cache_read_hits, restored.cache_read_hits);
        for (a, b) in cold.cores.iter().zip(&restored.cores) {
            assert_eq!((a.insts, a.cycles), (b.insts, b.cycles));
        }
    }

    #[test]
    fn warm_state_is_design_and_remap_portable() {
        // One capture under CD/direct must drive a DCA/remap run.
        let base = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(20_000, 40_000);
        let benches = [Benchmark::Gcc, Benchmark::Lbm];
        let warm = System::capture_warm(base, &benches);
        let mut other = SystemConfig::paper_remap(Design::Dca, OrgKind::DirectMapped);
        other.target_insts = 20_000;
        other.warmup_ops = base.warmup_ops;
        let r = System::from_warm(other, &benches, &warm).run();
        assert!(r.cores.iter().all(|c| c.insts >= 20_000));
    }

    #[test]
    #[should_panic(expected = "fingerprint mismatch")]
    fn from_warm_rejects_different_seed() {
        let cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(10_000, 10_000);
        let benches = [Benchmark::Gcc];
        let warm = System::capture_warm(cfg, &benches);
        let mut other = cfg;
        other.seed ^= 0xBAD;
        System::from_warm(other, &benches, &warm);
    }

    #[test]
    fn trace_replay_system_runs_and_restores_from_warm() {
        use dca_cpu::{dump_synthetic, encode_trace, register_trace_bytes, TraceEncoding};
        // A trace captured from a synthetic run drives a full system —
        // including warm-up and warm-state restore — like any Table I
        // benchmark.
        let records = dump_synthetic(Benchmark::Libquantum, 20_000, 17);
        let bytes = encode_trace(&records, TraceEncoding::Delta);
        let tb = register_trace_bytes("system-trace-test", &bytes).expect("register");
        let cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped).scaled(25_000, 50_000);
        let benches = [tb, Benchmark::Mcf];
        let cold = System::new(cfg, &benches).run();
        assert!(cold.cores.iter().all(|c| c.insts >= 25_000));
        assert_eq!(cold.cores[0].bench, "system-trace-test");
        let warm = System::capture_warm(cfg, &benches);
        let restored = System::from_warm(cfg, &benches, &warm).run();
        assert_eq!(cold.end_time, restored.end_time);
        assert_eq!(cold.events_processed, restored.events_processed);
        assert_eq!(cold.cache_read_hits, restored.cache_read_hits);
    }

    #[test]
    fn cycle_main_memory_runs_all_designs() {
        for design in Design::ALL {
            let cfg = SystemConfig::paper_cycle_mem(design, OrgKind::DirectMapped)
                .scaled(30_000, 120_000);
            let r = System::new(cfg, &[Benchmark::Libquantum, Benchmark::Mcf]).run();
            assert!(
                r.cores.iter().all(|c| c.insts >= 30_000),
                "{} cycle-mem run incomplete",
                design.label()
            );
            assert_eq!(r.main_mem.backend, "cycle");
            assert_eq!(r.main_mem.reads, r.mem_reads);
            assert!(r.mem_reads > 0, "misses must reach the device");
            assert!(r.main_mem.row_hits + r.main_mem.row_conflicts <= r.mem_reads + r.mem_writes);
            assert!(r.main_mem.busy_ps > 0);
        }
    }

    #[test]
    fn cycle_main_memory_is_deterministic_and_differs_from_flat() {
        let mk = |cycle: bool| {
            let mut cfg =
                SystemConfig::paper(Design::Dca, OrgKind::DirectMapped).scaled(30_000, 120_000);
            if cycle {
                cfg.main_mem = dca_mem_hier::MainMemConfig::ddr4();
            }
            System::new(cfg, &[Benchmark::Libquantum, Benchmark::Mcf]).run()
        };
        let a = mk(true);
        let b = mk(true);
        assert_eq!(a.end_time, b.end_time);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.mem_reads, b.mem_reads);
        let flat = mk(false);
        assert_eq!(flat.main_mem.backend, "flat");
        assert_ne!(
            a.end_time, flat.end_time,
            "a real device must reshape timing at least slightly"
        );
    }

    #[test]
    fn timeline_recording_works() {
        let mut cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped).scaled(30_000, 5_000);
        cfg.record_timeline = true;
        let r = System::new(cfg, &[Benchmark::Libquantum]).run();
        let tl = r.timeline.expect("timeline requested");
        assert!(!tl.entries().is_empty());
        // Entries are in issue order with sane windows.
        for e in tl.entries() {
            assert!(e.burst_end > e.burst_start);
        }
    }
}
