//! Warm-state checkpointing: capture the functionally warmed memory
//! hierarchy once, reuse it across every design/remap variant of a run.
//!
//! Functional warm-up (see [`System::new`](crate::System::new)) streams
//! `warmup_ops` memory operations per core through the L1s, the shared
//! L2 and the DRAM-cache tag array with **no timing**. Its outcome
//! therefore depends only on the op streams and the cache shapes — not
//! on the controller design, the arbiter, the DRAM timing, or the bank
//! mapping (the XOR remap permutes *banks*; a block's `(set, tag)` pair
//! is mapping-independent, which `geometry::tests::
//! xor_scheme_changes_banks_only` locks in). A figure sweep that
//! evaluates CD/ROD/DCA × {direct, remap} on one mix re-runs six
//! *identical* warm-ups; a [`WarmState`] lets it pay for one.
//!
//! ## Fingerprint scheme
//!
//! A `WarmState` is keyed by a 64-bit fingerprint folding together
//! exactly the inputs that determine the warmed state:
//!
//! * [`WARM_FORMAT_VERSION`] (schema changes invalidate old state),
//! * the workloads, in core order. For a synthetic benchmark that is
//!   its id *and* every generator parameter (pattern, fractions,
//!   working set, gap, reuse), so a retuned profile invalidates
//!   persisted state by content, not by a remembered version bump. For
//!   a trace workload it is the trace file's **content digest** — an
//!   edited trace yields a new digest and therefore misses every stale
//!   checkpoint by construction (paths and mtimes are never consulted),
//! * the cache organisation (`OrgKind` discriminant + associativity)
//!   and the replacement policy (warm-up drives the tag array through
//!   [`TagArray::insert`], whose victim choice is policy-dependent),
//! * the stacked-DRAM organisation (channels, ranks, banks, rows,
//!   row bytes — these size the tag array via the frame count),
//! * `warmup_ops` and the experiment `seed`.
//!
//! Fields deliberately **excluded** — and why reuse is sound:
//! `design`, `arbiter`, queue capacities and timing (never consulted
//! before the timing phase), `mapping` (bank permutation only, see
//! above), `main_mem` (the main-memory backend is a pure timing-phase
//! device — one warm-up serves a whole bandwidth-sensitivity sweep),
//! `target_insts` (timing-phase length). If warm-up ever grows a
//! dependency on a new field, add it to [`WarmState::fingerprint_for`]
//! — a stale fingerprint silently reusing wrong state is the one bug
//! this scheme must never allow, so when in doubt, include the field.
//!
//! ## On-disk format
//!
//! [`WarmState::encode`] produces a standalone little-endian blob:
//! an 8-byte magic (`"DCAWARM\0"`), a `u32` format version, the `u64`
//! fingerprint, the component payloads (per-core [`SramCache`] L1s,
//! the L2, the [`TagArray`], the [`MapI`] table, and one tagged
//! [`OpStream`] cursor per core — a [`dca_cpu::TraceGen`] generator or
//! a [`dca_cpu::TraceReader`] replay position) via each component's
//! own `encode`/`decode` pair, and a trailing `u64` digest over
//! everything before it.
//! [`WarmState::decode`] validates the digest first, then magic,
//! version, every component's invariants, and that the buffer is fully
//! consumed — per-field range checks alone cannot catch a bit flip
//! that lands inside a legal value, and a silently altered warm state
//! is the one failure this subsystem must never allow.
//! **Invalidation rules**: a reader must discard a blob whose digest,
//! magic or version don't check out ([`WarmState::decode`] enforces
//! these) or whose fingerprint is not the one it derived from its own
//! configuration (the caller checks, e.g. `dca_bench::WarmCache`) — so
//! bit rot, renamed benchmarks, retuned profiles behind the same id,
//! or geometry changes all fall back to a fresh warm-up rather than
//! corrupt a run.
//!
//! The [`MapI`] table rides along for checkpoint completeness even
//! though today's warm-up never trains it (it is always the pristine
//! paper table); if warm-up ever does, the format already carries it.

use dca_cpu::{tracefile, Benchmark, OpStream, Pattern};
use dca_dram_cache::{MapI, OrgKind, TagArray};
use dca_mem_hier::SramCache;
use dca_sim_core::{digest64, ByteReader, ByteWriter, CodecError};

use crate::config::SystemConfig;

/// Version of the checkpoint schema (fingerprint inputs + byte layout).
/// Bump on any change to either; old state then misses cleanly.
/// (v2: per-core workload cursors are kind-tagged [`OpStream`]s so
/// trace replays checkpoint alongside synthetic generators.
/// v3: the main-memory tier became a configurable device
/// ([`SystemConfig::main_mem`]); the cursor payload is unchanged, but
/// the bump retires every pre-refactor pool so cross-refactor state is
/// never trusted. A v2 blob is **cleanly rejected** by
/// [`WarmState::decode`] with a version error — consumers such as
/// `dca_bench::WarmCache` log a warning and fall back to a cold
/// warm-up; nothing panics. The backend choice itself is deliberately
/// *excluded* from the fingerprint: warm-up is timing-free, so one
/// warm-up legally serves every main-memory backend of a sensitivity
/// sweep.
/// v4: the tag array grew a pluggable replacement policy — the codec
/// carries a policy byte and the fingerprint folds the policy in (the
/// warmed tag contents depend on it). A v3 blob is rejected with the
/// same clean version error as v2; consumers warm cold. The *design*
/// — including the Banshee fill gate, which is a timing-phase refill
/// filter — and the main-memory backend remain excluded.)
pub const WARM_FORMAT_VERSION: u32 = 4;

/// Magic prefix of an encoded [`WarmState`].
const MAGIC: &[u8; 8] = b"DCAWARM\0";

/// The complete post-warm-up state of the design-independent half of
/// the system: per-core L1s, the shared L2, the DRAM-cache tag array,
/// the MAP-I predictor and the per-core workload generators (with their
/// RNG cursors). Captured by
/// [`System::capture_warm`](crate::System::capture_warm), consumed by
/// [`System::from_warm`](crate::System::from_warm).
#[derive(Clone, Debug)]
pub struct WarmState {
    fingerprint: u64,
    pub(crate) l1: Vec<SramCache>,
    pub(crate) l2: SramCache,
    pub(crate) tags: TagArray,
    pub(crate) predictor: MapI,
    pub(crate) gens: Vec<OpStream>,
}

/// SplitMix64-style avalanche, the fingerprint's mixing step.
#[inline]
fn mix(h: u64, v: u64) -> u64 {
    let mut z = h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WarmState {
    /// Bundle captured components into a keyed checkpoint. Called by
    /// `System::capture_warm`; the components must be in their exact
    /// post-warm-up state.
    pub(crate) fn new(
        cfg: &SystemConfig,
        benches: &[Benchmark],
        l1: Vec<SramCache>,
        l2: SramCache,
        tags: TagArray,
        predictor: MapI,
        gens: Vec<OpStream>,
    ) -> Self {
        assert_eq!(l1.len(), benches.len());
        assert_eq!(gens.len(), benches.len());
        WarmState {
            fingerprint: Self::fingerprint_for(cfg, benches),
            l1,
            l2,
            tags,
            predictor,
            gens,
        }
    }

    /// The checkpoint's key.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of cores the checkpoint was captured for.
    pub fn cores(&self) -> usize {
        self.gens.len()
    }

    /// Fingerprint of the warm-up a `(cfg, benches)` pair implies. See
    /// the module docs for what is (and is deliberately not) included.
    pub fn fingerprint_for(cfg: &SystemConfig, benches: &[Benchmark]) -> u64 {
        let mut h = mix(0x5DCA_2016_0000_0000, WARM_FORMAT_VERSION as u64);
        h = mix(h, benches.len() as u64);
        for b in benches {
            match b {
                // A trace workload's op stream is exactly its records:
                // hash the file's content digest (never its path or
                // registration order), so an edited trace invalidates
                // stale checkpoints by construction.
                Benchmark::Trace(id) => {
                    h = mix(h, 0x7472_6163_6500_0000); // "trace"
                    h = mix(h, tracefile::trace_data(*id).digest);
                }
                // Hash the full profile *contents*, not just the id: a
                // retuned profile behind an unchanged id must miss the
                // cache (the generators' entire op stream depends on
                // these parameters), without anyone remembering a
                // version bump.
                b => {
                    let p = b.profile();
                    h = mix(h, b.id() as u64);
                    h = mix(
                        h,
                        match p.pattern {
                            Pattern::Stream { streams } => 0x0100 | streams as u64,
                            Pattern::Chase { chains } => 0x0200 | chains as u64,
                            Pattern::Mixed { stream_prob } => mix(0x0300, stream_prob.to_bits()),
                        },
                    );
                    for v in [
                        p.mem_fraction.to_bits(),
                        p.store_fraction.to_bits(),
                        p.reuse_prob.to_bits(),
                        p.ws_blocks,
                        p.mean_gap as u64,
                    ] {
                        h = mix(h, v);
                    }
                }
            }
        }
        h = mix(
            h,
            match cfg.org_kind {
                OrgKind::SetAssoc { ways } => 0x5A00 | ways as u64,
                OrgKind::DirectMapped => 0xD300,
            },
        );
        // The replacement policy shapes which victims warm-up evicts,
        // so the warmed tag contents are policy-specific.
        h = mix(h, 0x7263_7000 | cfg.replacement.code() as u64);
        let org = &cfg.dram_org;
        for v in [
            org.channels as u64,
            org.ranks as u64,
            org.banks_per_rank as u64,
            org.rows_per_bank as u64,
            org.row_bytes as u64,
        ] {
            h = mix(h, v);
        }
        h = mix(h, cfg.warmup_ops);
        mix(h, cfg.seed)
    }

    /// Whether this checkpoint is the warm-up `(cfg, benches)` needs.
    pub fn matches(&self, cfg: &SystemConfig, benches: &[Benchmark]) -> bool {
        self.fingerprint == Self::fingerprint_for(cfg, benches)
    }

    /// Serialise to the standalone on-disk blob (see module docs).
    pub fn encode(&self) -> Vec<u8> {
        // Dominated by the tag array (~6 B/entry); size the buffer once.
        let approx = 64
            + self.tags.sets() as usize * self.tags.ways() as usize * 6
            + (self.l1.len() + 16) * 32 * 1024;
        let mut w = ByteWriter::with_capacity(approx);
        w.put_bytes(MAGIC);
        w.put_u32(WARM_FORMAT_VERSION);
        w.put_u64(self.fingerprint);
        w.put_u32(self.l1.len() as u32);
        for c in &self.l1 {
            c.encode(&mut w);
        }
        self.l2.encode(&mut w);
        self.tags.encode(&mut w);
        self.predictor.encode(&mut w);
        w.put_u32(self.gens.len() as u32);
        for g in &self.gens {
            g.encode(&mut w);
        }
        let mut blob = w.into_vec();
        let d = digest64(&blob);
        blob.extend_from_slice(&d.to_le_bytes());
        blob
    }

    /// Rebuild a checkpoint from an [`WarmState::encode`] blob,
    /// validating magic, version, every component invariant, and full
    /// consumption of the buffer.
    pub fn decode(bytes: &[u8]) -> Result<WarmState, CodecError> {
        // Integrity first: the trailing digest must match everything
        // before it, or a flipped bit inside a legal field value would
        // decode into a silently different warm state.
        let Some(payload_len) = bytes.len().checked_sub(8) else {
            return Err(CodecError::new("truncated input"));
        };
        let (payload, stored) = bytes.split_at(payload_len);
        if digest64(payload) != u64::from_le_bytes(stored.try_into().expect("8B")) {
            return Err(CodecError::new("digest mismatch"));
        }
        let mut r = ByteReader::new(payload);
        if r.bytes(MAGIC.len())? != MAGIC {
            return Err(CodecError::new("bad magic"));
        }
        let version = r.u32()?;
        if version != WARM_FORMAT_VERSION {
            // Old pools predate either the tier-generic main-memory
            // refactor (v2 and earlier) or the policy-aware tag codec
            // (v3): reject cleanly so callers re-warm.
            return Err(CodecError::new("unsupported warm-state version"));
        }
        let fingerprint = r.u64()?;
        let n_l1 = r.u32()? as usize;
        if n_l1 == 0 || n_l1 > 4 {
            return Err(CodecError::new("implausible core count"));
        }
        let mut l1 = Vec::with_capacity(n_l1);
        for _ in 0..n_l1 {
            l1.push(SramCache::decode(&mut r)?);
        }
        let l2 = SramCache::decode(&mut r)?;
        let tags = TagArray::decode(&mut r)?;
        let predictor = MapI::decode(&mut r)?;
        let n_gens = r.u32()? as usize;
        if n_gens != n_l1 {
            return Err(CodecError::new("generator/core count mismatch"));
        }
        let mut gens = Vec::with_capacity(n_gens);
        for _ in 0..n_gens {
            gens.push(OpStream::decode(&mut r)?);
        }
        r.finish()?;
        Ok(WarmState {
            fingerprint,
            l1,
            l2,
            tags,
            predictor,
            gens,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Design;

    fn cfg(org: OrgKind) -> SystemConfig {
        SystemConfig::paper(Design::Cd, org).scaled(10_000, 20_000)
    }

    const BENCHES: [Benchmark; 2] = [Benchmark::Libquantum, Benchmark::Mcf];

    #[test]
    fn fingerprint_ignores_design_mapping_and_timing_knobs() {
        let base = cfg(OrgKind::DirectMapped);
        let fp = WarmState::fingerprint_for(&base, &BENCHES);
        for design in Design::ALL {
            let mut c = base;
            c.design = design;
            c.mapping = dca_dram::MappingScheme::XorRemap;
            c.target_insts = 999_999;
            c.engine = crate::config::EngineSel::Sharded { threads: 4 };
            c.event_slot_shift = 4;
            c.lee_writeback = true;
            assert_eq!(WarmState::fingerprint_for(&c, &BENCHES), fp);
        }
    }

    #[test]
    fn fingerprint_tracks_warmup_inputs() {
        let base = cfg(OrgKind::DirectMapped);
        let fp = WarmState::fingerprint_for(&base, &BENCHES);
        let mut c = base;
        c.seed ^= 1;
        assert_ne!(WarmState::fingerprint_for(&c, &BENCHES), fp);
        let mut c = base;
        c.warmup_ops += 1;
        assert_ne!(WarmState::fingerprint_for(&c, &BENCHES), fp);
        let c = cfg(OrgKind::paper_set_assoc());
        assert_ne!(WarmState::fingerprint_for(&c, &BENCHES), fp);
        // Bench order matters: cores are seeded per index.
        let swapped = [BENCHES[1], BENCHES[0]];
        assert_ne!(WarmState::fingerprint_for(&base, &swapped), fp);
    }

    #[test]
    fn fingerprint_keys_trace_workloads_by_content_digest() {
        use dca_cpu::{encode_trace, register_trace_bytes, TraceEncoding, TraceRecord};
        let records: Vec<TraceRecord> = (0..100)
            .map(|i| TraceRecord {
                gap: 2,
                block: i,
                is_store: i % 5 == 0,
            })
            .collect();
        let a = register_trace_bytes("warm-fp-a", &encode_trace(&records, TraceEncoding::Delta))
            .expect("register");
        let c = cfg(OrgKind::DirectMapped);
        let fp_a = WarmState::fingerprint_for(&c, &[a, Benchmark::Mcf]);
        // Same content registered under another name: same fingerprint.
        let same = register_trace_bytes(
            "warm-fp-renamed",
            &encode_trace(&records, TraceEncoding::Delta),
        )
        .expect("register");
        assert_eq!(
            WarmState::fingerprint_for(&c, &[same, Benchmark::Mcf]),
            fp_a
        );
        // One edited record: a different digest, a different key.
        let mut edited = records;
        edited[50].is_store = !edited[50].is_store;
        let b = register_trace_bytes("warm-fp-a", &encode_trace(&edited, TraceEncoding::Delta))
            .expect("register");
        assert_ne!(WarmState::fingerprint_for(&c, &[b, Benchmark::Mcf]), fp_a);
        // Trace vs synthetic in the same slot: different key.
        assert_ne!(
            WarmState::fingerprint_for(&c, &[Benchmark::Gcc, Benchmark::Mcf]),
            fp_a
        );
    }

    #[test]
    fn fingerprint_ignores_main_memory_backend() {
        // Warm-up is timing-free: one checkpoint must serve every
        // main-memory backend of a bandwidth-sensitivity sweep.
        let base = cfg(OrgKind::DirectMapped);
        let fp = WarmState::fingerprint_for(&base, &BENCHES);
        let mut c = base;
        c.main_mem = dca_mem_hier::MainMemConfig::ddr4();
        assert_eq!(WarmState::fingerprint_for(&c, &BENCHES), fp);
        c.main_mem = dca_mem_hier::MainMemConfig::ddr4_bandwidth_div(4);
        assert_eq!(WarmState::fingerprint_for(&c, &BENCHES), fp);
        c.main_mem = dca_mem_hier::MainMemConfig::xpoint();
        assert_eq!(WarmState::fingerprint_for(&c, &BENCHES), fp);
    }

    #[test]
    fn fingerprint_tracks_replacement_policy() {
        use dca_dram_cache::ReplacementPolicy;
        // Warm-up evicts through the policy, so every policy keys its
        // own checkpoint — and each key is distinct.
        let base = cfg(OrgKind::paper_set_assoc());
        let fps: Vec<u64> = ReplacementPolicy::ALL
            .iter()
            .map(|&p| {
                let mut c = base;
                c.replacement = p;
                WarmState::fingerprint_for(&c, &BENCHES)
            })
            .collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j], "policies {i} and {j} collide");
            }
        }
        assert_eq!(fps[0], WarmState::fingerprint_for(&base, &BENCHES));
    }

    #[test]
    fn decode_rejects_v3_blobs_cleanly() {
        // A pre-policy-layer (v3) pool must be refused the same way v2
        // is: a clean version error, then a cold re-warm. Forge a
        // v3-stamped blob with a valid digest so only the version check
        // can reject it.
        let c = cfg(OrgKind::DirectMapped);
        let blob = crate::System::capture_warm(c, &BENCHES).encode();
        let mut old = blob[..blob.len() - 8].to_vec();
        old[8..12].copy_from_slice(&3u32.to_le_bytes()); // version field
        let d = dca_sim_core::digest64(&old);
        old.extend_from_slice(&d.to_le_bytes());
        let err = WarmState::decode(&old).expect_err("v3 must be rejected");
        assert!(
            format!("{err}").contains("version"),
            "error should name the version mismatch, got: {err}"
        );
    }

    #[test]
    fn decode_rejects_v2_blobs_cleanly() {
        // A pre-refactor (v2) pool must be refused with an error —
        // never a panic, never a silently trusted decode. Forge a
        // v2-stamped blob with a valid digest so only the version check
        // can reject it.
        let c = cfg(OrgKind::DirectMapped);
        let blob = crate::System::capture_warm(c, &BENCHES).encode();
        let mut old = blob[..blob.len() - 8].to_vec();
        old[8..12].copy_from_slice(&2u32.to_le_bytes()); // version field
        let d = dca_sim_core::digest64(&old);
        old.extend_from_slice(&d.to_le_bytes());
        let err = WarmState::decode(&old).expect_err("v2 must be rejected");
        assert!(
            format!("{err}").contains("version"),
            "error should name the version mismatch, got: {err}"
        );
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = cfg(OrgKind::DirectMapped);
        let warm = crate::System::capture_warm(c, &BENCHES);
        let blob = warm.encode();
        let back = WarmState::decode(&blob).expect("decode");
        assert_eq!(back.fingerprint(), warm.fingerprint());
        assert_eq!(back.cores(), warm.cores());
        // Bit-exact payload: re-encoding must reproduce the blob.
        assert_eq!(back.encode(), blob);
    }

    #[test]
    fn decode_rejects_corruption() {
        let c = cfg(OrgKind::DirectMapped);
        let blob = crate::System::capture_warm(c, &BENCHES).encode();
        assert!(WarmState::decode(&blob[..blob.len() - 1]).is_err());
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(WarmState::decode(&bad).is_err(), "bad magic");
        let mut bad = blob.clone();
        bad[8] = 0xEE; // version byte
        assert!(WarmState::decode(&bad).is_err(), "bad version");
        // A single mid-payload bit flip — almost certainly landing
        // inside a legal field value — must be caught by the digest,
        // not silently decoded into a different warm state.
        for at in [blob.len() / 3, blob.len() / 2, blob.len() - 9] {
            let mut bad = blob.clone();
            bad[at] ^= 0x10;
            assert!(WarmState::decode(&bad).is_err(), "bit flip at {at}");
        }
    }
}
