//! Optional access-level timeline recording, for the worked examples
//! (the paper's Figs 4, 5 and 7 are exactly such timelines).

use dca_dram::{AccessKind, RowOutcome};
use dca_dram_cache::{AccessRole, CacheReqKind};
use dca_sched::ReadClass;
use dca_sim_core::SimTime;

/// One issued access, annotated with everything the narrative needs.
#[derive(Clone, Copy, Debug)]
pub struct TimelineEntry {
    /// When the data burst started.
    pub burst_start: SimTime,
    /// When the data burst ended.
    pub burst_end: SimTime,
    /// Channel index.
    pub channel: u32,
    /// Bank within the channel.
    pub bank: u32,
    /// Row within the bank.
    pub row: u32,
    /// Read or write.
    pub kind: AccessKind,
    /// Role within its request (RT/RD/WT/WD/TAD...).
    pub role: AccessRole,
    /// Owning request kind (read/writeback/refill).
    pub req_kind: CacheReqKind,
    /// PR/LR classification.
    pub class: ReadClass,
    /// How the access met the row buffer.
    pub outcome: RowOutcome,
}

/// Bounded in-memory recording of issued accesses.
#[derive(Clone, Debug)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
    cap: usize,
}

impl Timeline {
    /// A recorder holding at most `cap` entries (oldest kept).
    pub fn new(cap: usize) -> Self {
        Timeline {
            entries: Vec::with_capacity(cap.min(4096)),
            cap,
        }
    }

    /// Record one entry if room remains.
    pub fn push(&mut self, e: TimelineEntry) {
        if self.entries.len() < self.cap {
            self.entries.push(e);
        }
    }

    /// Recorded entries in issue order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Entries overlapping the window `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> Vec<&TimelineEntry> {
        self.entries
            .iter()
            .filter(|e| e.burst_end > from && e.burst_start < to)
            .collect()
    }

    /// Human-readable one-line rendering of an entry.
    pub fn describe(e: &TimelineEntry) -> String {
        let dir = match e.kind {
            AccessKind::Read => "RD",
            AccessKind::Write => "WR",
        };
        let req = match e.req_kind {
            CacheReqKind::Read => "read",
            CacheReqKind::Writeback => "wb",
            CacheReqKind::Refill => "refill",
        };
        let class = match e.class {
            ReadClass::Priority => "PR",
            ReadClass::LowPriority => "LR",
        };
        let outcome = match e.outcome {
            RowOutcome::Hit => "hit",
            RowOutcome::Closed => "closed",
            RowOutcome::Conflict => "CONFLICT",
        };
        format!(
            "{:>10} - {:>10}  ch{} bank{:2} row{:4}  {dir} {:?} ({req}/{class}) [{outcome}]",
            format!("{}", e.burst_start),
            format!("{}", e.burst_end),
            e.channel,
            e.bank,
            e.row,
            e.role,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(start: u64, end: u64) -> TimelineEntry {
        TimelineEntry {
            burst_start: SimTime(start),
            burst_end: SimTime(end),
            channel: 0,
            bank: 1,
            row: 2,
            kind: AccessKind::Read,
            role: AccessRole::TagRead,
            req_kind: CacheReqKind::Writeback,
            class: ReadClass::LowPriority,
            outcome: RowOutcome::Conflict,
        }
    }

    #[test]
    fn respects_cap() {
        let mut t = Timeline::new(2);
        t.push(entry(0, 10));
        t.push(entry(10, 20));
        t.push(entry(20, 30));
        assert_eq!(t.entries().len(), 2);
    }

    #[test]
    fn window_filters() {
        let mut t = Timeline::new(10);
        t.push(entry(0, 10));
        t.push(entry(10, 20));
        t.push(entry(20, 30));
        assert_eq!(t.window(SimTime(10), SimTime(20)).len(), 1);
        assert_eq!(t.window(SimTime(0), SimTime(30)).len(), 3);
        assert_eq!(t.window(SimTime(100), SimTime(200)).len(), 0);
    }

    #[test]
    fn describe_mentions_the_interesting_bits() {
        let s = Timeline::describe(&entry(0, 10));
        assert!(s.contains("TagRead"));
        assert!(s.contains("wb/LR"));
        assert!(s.contains("CONFLICT"));
    }
}
