//! # dca — the DRAM-Cache-Aware DRAM controller
//!
//! A full-system reproduction of **Huang, Nagarajan & Joshi, "DCA: a
//! DRAM-Cache-Aware DRAM Controller" (SC '16)**.
//!
//! A request to a tags-in-DRAM cache expands into several DRAM accesses
//! (tag read, data read, tag write, ...). How a controller queues and
//! schedules those accesses decides whether critical demand reads wait
//! behind writeback bookkeeping. This crate implements the paper's three
//! designs over the shared substrate crates:
//!
//! * **CD** (conventional design, §III-A) — classify by *access type*:
//!   reads to the read queue, writes to the write queue. Minimises
//!   turnarounds but suffers **read priority inversion** and
//!   **read-read conflicts** (RRC).
//! * **ROD** (request-oriented design, §III-B) — classify by *request
//!   type*: everything belonging to a demand read goes to the read queue,
//!   everything belonging to a writeback/refill to the write queue (tag
//!   writes of read requests excepted, per the paper's footnote).
//!   Avoids inversion but triples turnarounds and stretches write-queue
//!   flushes.
//! * **DCA** (§IV) — CD's queues plus a **PR/LR split** in the read
//!   queue: priority reads are demand-read accesses, low-priority reads
//!   are tag/victim reads of writebacks and refills. LRs are held back
//!   like writes and flushed by the **Opportunistic Flushing Scheme**:
//!   an LR may issue when its bank has no row conflict, or when the
//!   bank's 3-bit **re-reference prediction counter (RRPC)** says the
//!   bank has not been touched by PRs recently (below the flushing
//!   factor FF). Algorithm 1's 85 %/75 % occupancy hysteresis lets LRs
//!   compete when the read queue backs up.
//!
//! [`System`] wires 4 cores → private L1s → shared L2 (+MSHRs) → the
//! per-channel controllers → the stacked-DRAM device → main memory, and
//! runs the deterministic event loop. [`SystemConfig`] reproduces
//! Table II; [`SystemReport`] carries every statistic the paper's figures
//! need.
//!
//! ## Tier-generic memory devices
//!
//! The `dca_dram` channel/bank/bus machinery is parameterised purely by
//! `TimingParams` + `Organization`, so the *same* cycle-level model
//! serves two tiers: the stacked-DRAM array behind the cache controller
//! (Table II geometry) and — since the main-memory refactor — the
//! off-chip DRAM behind the cache. [`SystemConfig::main_mem`] selects
//! the backing-store model:
//!
//! * **`MainMemConfig::Flat`** (default): the seed model — a fixed
//!   50 ns access latency plus 16 GB/s bus serialisation. Bit-identical
//!   to the pre-refactor simulator (`tests/main_mem_equivalence.rs`
//!   locks it against captured seed fingerprints).
//! * **`MainMemConfig::Cycle`**: a DDR4-style device (one 16-bank
//!   channel, 8 KB rows, DDR4-2400 timings by default) driven through
//!   a bounded FR-FCFS access queue. Miss refills, dirty-victim
//!   writebacks and Lee-writeback bursts now contend for real banks
//!   and a real bus. The device is event-driven: `Ev::MemPump` runs
//!   its scheduler whenever work arrives or a bank frees, and
//!   `Ev::MemArrive` routes each read completion back to its request —
//!   including the MAP-I speculative-prefetch race, where data can
//!   arrive before the tag check resolves (the request's `Fetch` state
//!   arbitrates). `MainMemConfig::ddr4_bandwidth_div` scales the burst
//!   time for main-memory-bandwidth sensitivity sweeps (the `figures
//!   --mainmem` table).
//!
//! [`SystemReport::main_mem`] reports the device either way: traffic,
//! bus busy time, and (cycle backend) row hit/conflict counts, queue
//! occupancy peaks and queueing delay.
//!
//! ## Warm-state checkpointing
//!
//! Construction has three phases: **build** (cold hierarchy), **warm-up**
//! (functional, timing-free streaming of `warmup_ops` ops per core) and
//! the **timing** run. Warm-up is ~45 % of a short run's wall clock and
//! is design-, arbiter-, timing- and bank-mapping-independent, so a
//! figure sweep over CD/ROD/DCA × {direct, XOR-remap} on one mix can
//! share a single warm-up:
//!
//! * [`System::capture_warm`] runs build + warm-up and returns a
//!   [`WarmState`] — the warmed L1s/L2/tag-array plus the mid-stream
//!   workload generators (RNG cursors included) and the MAP-I table
//!   (carried for completeness; warm-up does not currently train it),
//!   keyed by a
//!   fingerprint of exactly the inputs warm-up depends on (benchmarks,
//!   cache/DRAM geometry, `warmup_ops`, seed — see the [`warm`] module
//!   docs for the scheme, the invalidation rules and the on-disk
//!   format).
//! * [`System::from_warm`] builds a runnable system directly from a
//!   `WarmState`, skipping warm-up; the run is bit-for-bit identical to
//!   a cold [`System::new`] (asserted by
//!   `tests/warm_checkpoint_equivalence.rs` and the `perf_smoke`
//!   harness on every CI run).
//!
//! The `dca-bench` crate layers a process-wide, optionally disk-backed
//! `WarmCache` on top so the whole figure harness shares warm-ups
//! transparently.
//!
//! ```
//! use dca::{Design, SystemConfig, System};
//! use dca_dram_cache::OrgKind;
//! use dca_cpu::Benchmark;
//!
//! let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
//! cfg.target_insts = 50_000; // tiny demo run
//! cfg.warmup_ops = 10_000;
//! let report = dca::System::new(cfg, &[Benchmark::Libquantum, Benchmark::Mcf]).run();
//! assert!(report.cores[0].ipc > 0.0);
//! ```

pub mod config;
pub mod controller;
pub mod report;
pub mod rrpc;
pub mod system;
pub mod timeline;
pub mod warm;

pub use config::{Arbiter, DcaParams, Design, EngineSel, SystemConfig};
pub use controller::{ChannelController, CtrlStats};
pub use report::{ChannelReport, CoreReport, SystemReport};
pub use rrpc::Rrpc;
pub use system::System;
pub use timeline::{Timeline, TimelineEntry};
pub use warm::{WarmState, WARM_FORMAT_VERSION};
