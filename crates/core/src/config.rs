//! System configuration (paper Table II).

use dca_dram::{MappingScheme, Organization, TimingParams};
use dca_dram_cache::{OrgKind, ReplacementPolicy};
use dca_mem_hier::MainMemConfig;

/// The controller designs raced against each other: the paper's three
/// plus a Banshee-style bandwidth-efficient fourth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Design {
    /// Conventional Design (§III-A): queue by access type.
    Cd,
    /// Request-Oriented Design (§III-B): queue by request type.
    Rod,
    /// DRAM-Cache-Aware (§IV): CD queues + PR/LR split + OFS.
    Dca,
    /// Banshee-style bandwidth-efficient design (Yu et al.): CD queues,
    /// but miss fills are gated by page-granular frequency counters so
    /// cold pages bypass the cache and fill traffic drops
    /// ([`BansheeParams`]).
    Banshee,
}

impl Design {
    /// All designs, the paper's three in presentation order first.
    pub const ALL: [Design; 4] = [Design::Cd, Design::Rod, Design::Dca, Design::Banshee];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Design::Cd => "CD",
            Design::Rod => "ROD",
            Design::Dca => "DCA",
            Design::Banshee => "BAN",
        }
    }
}

/// Which base arbitration algorithm orders candidates within a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arbiter {
    /// BLISS \[11\] — the paper's choice for all designs.
    Bliss,
    /// FR-FCFS — ablation only.
    FrFcfs,
}

/// DCA-specific knobs (§IV).
#[derive(Clone, Copy, Debug)]
pub struct DcaParams {
    /// Flushing factor: an LR with a row conflict may still issue when
    /// its bank's RRPC is below this (paper default FF-4).
    pub flushing_factor: u8,
    /// Algorithm 1 ScheduleAll turn-on occupancy (paper: 85 %).
    pub read_q_hi: f64,
    /// Algorithm 1 ScheduleAll turn-off occupancy (paper: 75 %).
    pub read_q_lo: f64,
}

impl Default for DcaParams {
    fn default() -> Self {
        DcaParams {
            flushing_factor: 4,
            read_q_hi: 0.85,
            read_q_lo: 0.75,
        }
    }
}

/// Banshee-style fill-gate knobs ([`Design::Banshee`]).
#[derive(Clone, Copy, Debug)]
pub struct BansheeParams {
    /// A page's miss fills are admitted only once its frequency counter
    /// has reached this value — the first `fill_threshold - 1` misses
    /// to a cold page bypass the cache.
    pub fill_threshold: u8,
    /// Saturation cap for the per-page frequency counters (Banshee uses
    /// small saturating counters in the page-table/TLB entries).
    pub counter_cap: u8,
}

impl Default for BansheeParams {
    fn default() -> Self {
        BansheeParams {
            fill_threshold: 2,
            counter_cap: 7,
        }
    }
}

/// Full system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Controller design under test.
    pub design: Design,
    /// DRAM-cache organisation (set-associative / direct-mapped).
    pub org_kind: OrgKind,
    /// DRAM-cache replacement policy (SRRIP default; warm-up drives the
    /// tag array through it, so it is part of the warm fingerprint).
    pub replacement: ReplacementPolicy,
    /// Bank-index mapping (plain or XOR remap \[9\]).
    pub mapping: MappingScheme,
    /// Base arbiter (paper: BLISS for everything).
    pub arbiter: Arbiter,
    /// Stacked-DRAM timing.
    pub timing: TimingParams,
    /// Stacked-DRAM organisation.
    pub dram_org: Organization,
    /// Off-chip main-memory backend behind the DRAM cache: the flat
    /// seed model (Table II's 50 ns + bus, the default — bit-identical
    /// to the pre-refactor simulator) or the cycle-level DDR4-style
    /// device.
    pub main_mem: MainMemConfig,
    /// Read-queue entries per channel (Table II: 64; 32 for ROD).
    pub read_q_cap: usize,
    /// Write-queue entries per channel (Table II: 64; 96 for ROD).
    pub write_q_cap: usize,
    /// Write-queue drain thresholds (Table II: 50 %/85 %).
    pub write_lo: f64,
    /// See [`SystemConfig::write_lo`].
    pub write_hi: f64,
    /// DCA knobs.
    pub dca: DcaParams,
    /// Banshee fill-gate knobs (consulted only by [`Design::Banshee`]).
    pub banshee: BansheeParams,
    /// Enable Lee et al. DRAM-aware L2 writeback \[20\] (Fig 19).
    pub lee_writeback: bool,
    /// Enable the MAP-I hit/miss predictor \[7\] (paper: on).
    pub predictor: bool,
    /// Instructions per core for the timing run.
    pub target_insts: u64,
    /// Functional warm-up memory operations per core before timing.
    pub warmup_ops: u64,
    /// Experiment seed.
    pub seed: u64,
    /// L1 hit latency in CPU cycles (Table II: 2).
    pub l1_lat_cycles: u64,
    /// L2 hit latency in CPU cycles (Table II: 20).
    pub l2_lat_cycles: u64,
    /// Shared L2 MSHR count.
    pub mshrs: usize,
    /// Record a detailed access timeline (examples/diagnostics only).
    pub record_timeline: bool,
    /// Drive the simulation with the original `BinaryHeap` event engine
    /// instead of the calendar queue. Results are bit-identical either
    /// way (both deliver in `(time, seq)` order); the toggle exists for
    /// A/B determinism tests and the `perf_smoke` baseline measurement.
    pub baseline_engine: bool,
    /// log2 of the calendar-queue slot width in picoseconds (default
    /// [`dca_sim_core::events::SLOT_SHIFT`] = 10, i.e. ~1 ns slots). A
    /// pure performance knob — delivery order, and hence every result,
    /// is identical for any value; the `event_clustered_*` and
    /// `event_rolling_window_*` microbenches bracket the trade-off.
    /// Ignored when `baseline_engine` is set.
    pub event_slot_shift: u32,
}

impl SystemConfig {
    /// Table II configuration for `design` × `org_kind`.
    pub fn paper(design: Design, org_kind: OrgKind) -> Self {
        let (read_q_cap, write_q_cap) = match design {
            Design::Rod => (32, 96),
            _ => (64, 64),
        };
        SystemConfig {
            design,
            org_kind,
            replacement: ReplacementPolicy::Srrip,
            mapping: MappingScheme::Direct,
            arbiter: Arbiter::Bliss,
            timing: TimingParams::paper_stacked(),
            dram_org: Organization::paper(),
            main_mem: MainMemConfig::paper_flat(),
            read_q_cap,
            write_q_cap,
            write_lo: 0.50,
            write_hi: 0.85,
            dca: DcaParams::default(),
            banshee: BansheeParams::default(),
            lee_writeback: false,
            predictor: true,
            target_insts: 2_000_000,
            warmup_ops: 400_000,
            seed: 0xDCA_2016,
            l1_lat_cycles: 2,
            l2_lat_cycles: 20,
            mshrs: 32,
            record_timeline: false,
            baseline_engine: false,
            event_slot_shift: dca_sim_core::events::SLOT_SHIFT,
        }
    }

    /// Convenience: the paper config with the XOR remapping enabled.
    pub fn paper_remap(design: Design, org_kind: OrgKind) -> Self {
        let mut cfg = Self::paper(design, org_kind);
        cfg.mapping = MappingScheme::XorRemap;
        cfg
    }

    /// Convenience: the paper config with the cycle-level DDR4
    /// main-memory backend instead of the flat model.
    pub fn paper_cycle_mem(design: Design, org_kind: OrgKind) -> Self {
        let mut cfg = Self::paper(design, org_kind);
        cfg.main_mem = MainMemConfig::ddr4();
        cfg
    }

    /// Convenience: the paper config with the slow 3DXPoint-like
    /// cycle-level main memory — the regime where the DRAM cache stops
    /// being an optimisation and becomes load-bearing.
    pub fn paper_xpoint(design: Design, org_kind: OrgKind) -> Self {
        let mut cfg = Self::paper(design, org_kind);
        cfg.main_mem = MainMemConfig::xpoint();
        cfg
    }

    /// Scale the run length (both warm-up and timing) by `factor` — used
    /// by tests and quick benches.
    pub fn scaled(mut self, insts: u64, warmup: u64) -> Self {
        self.target_insts = insts;
        self.warmup_ops = warmup;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rod_gets_asymmetric_queues() {
        let cd = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped);
        let rod = SystemConfig::paper(Design::Rod, OrgKind::DirectMapped);
        let dca = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        assert_eq!((cd.read_q_cap, cd.write_q_cap), (64, 64));
        assert_eq!((rod.read_q_cap, rod.write_q_cap), (32, 96));
        assert_eq!((dca.read_q_cap, dca.write_q_cap), (64, 64));
    }

    #[test]
    fn labels() {
        assert_eq!(Design::Cd.label(), "CD");
        assert_eq!(Design::Rod.label(), "ROD");
        assert_eq!(Design::Dca.label(), "DCA");
        assert_eq!(Design::Banshee.label(), "BAN");
        assert_eq!(Design::ALL.len(), 4);
    }

    #[test]
    fn banshee_gets_cd_queues_and_srrip_default() {
        let ban = SystemConfig::paper(Design::Banshee, OrgKind::DirectMapped);
        assert_eq!((ban.read_q_cap, ban.write_q_cap), (64, 64));
        assert_eq!(ban.replacement, ReplacementPolicy::Srrip);
        assert_eq!(ban.banshee.fill_threshold, 2);
        assert!(ban.banshee.counter_cap >= ban.banshee.fill_threshold);
    }

    #[test]
    fn xpoint_variant_flips_main_mem_only() {
        let a = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        let b = SystemConfig::paper_xpoint(Design::Dca, OrgKind::DirectMapped);
        assert!(!a.main_mem.is_cycle());
        assert!(b.main_mem.is_cycle());
        assert_eq!(a.read_q_cap, b.read_q_cap);
    }

    #[test]
    fn dca_defaults_match_paper() {
        let d = DcaParams::default();
        assert_eq!(d.flushing_factor, 4);
        assert_eq!(d.read_q_hi, 0.85);
        assert_eq!(d.read_q_lo, 0.75);
    }

    #[test]
    fn remap_variant_flips_mapping_only() {
        let a = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        let b = SystemConfig::paper_remap(Design::Dca, OrgKind::DirectMapped);
        assert_eq!(a.mapping, MappingScheme::Direct);
        assert_eq!(b.mapping, MappingScheme::XorRemap);
        assert_eq!(a.read_q_cap, b.read_q_cap);
    }
}
