//! System configuration (paper Table II).

use dca_dram::{MappingScheme, Organization, TimingParams};
use dca_dram_cache::{OrgKind, ReplacementPolicy};
use dca_mem_hier::MainMemConfig;

/// The controller designs raced against each other: the paper's three
/// plus a Banshee-style bandwidth-efficient fourth.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Design {
    /// Conventional Design (§III-A): queue by access type.
    Cd,
    /// Request-Oriented Design (§III-B): queue by request type.
    Rod,
    /// DRAM-Cache-Aware (§IV): CD queues + PR/LR split + OFS.
    Dca,
    /// Banshee-style bandwidth-efficient design (Yu et al.): CD queues,
    /// but miss fills are gated by page-granular frequency counters so
    /// cold pages bypass the cache and fill traffic drops
    /// ([`BansheeParams`]).
    Banshee,
}

impl Design {
    /// All designs, the paper's three in presentation order first.
    pub const ALL: [Design; 4] = [Design::Cd, Design::Rod, Design::Dca, Design::Banshee];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Design::Cd => "CD",
            Design::Rod => "ROD",
            Design::Dca => "DCA",
            Design::Banshee => "BAN",
        }
    }
}

/// Which event engine drives the simulation loop. Every variant delivers
/// events in the same total `(time, seq)` order, so the choice cannot
/// affect results — `tests/engine_equivalence.rs` locks all of them to
/// bit-identical `SystemReport` fingerprints. The knob selects wall-clock
/// behaviour only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum EngineSel {
    /// The original `BinaryHeap` engine — the A/B oracle and perf
    /// baseline.
    Heap,
    /// Two-level calendar queue at the fixed
    /// [`SystemConfig::event_slot_shift`] slot width (default).
    #[default]
    Calendar,
    /// Calendar queue with runtime density-adaptive slot width: the
    /// queue samples events-per-slot and resizes itself when clustering
    /// changes, so no per-workload `event_slot_shift` tuning is needed.
    CalendarAdaptive,
    /// Domain-sharded event storage: one calendar queue per shard
    /// (events are tagged with a static domain — front-end, per
    /// DRAM-cache channel, main memory — at their schedule sites) with a
    /// deterministic min-merge across shards. `threads` sets the shard
    /// count (1–8). See the engine notes in `core::system` for why the
    /// system-level merge stays on one thread while the parallel
    /// protocol itself lives in `dca_sim_core::shardloop`.
    Sharded {
        /// Shard count; must be in `1..=8`.
        threads: u8,
    },
}

impl EngineSel {
    /// Stable lowercase token for job ids and CLI surfaces: `heap`,
    /// `cal`, `cala`, or `sh<threads>`.
    pub fn token(self) -> String {
        match self {
            EngineSel::Heap => "heap".to_string(),
            EngineSel::Calendar => "cal".to_string(),
            EngineSel::CalendarAdaptive => "cala".to_string(),
            EngineSel::Sharded { threads } => format!("sh{threads}"),
        }
    }

    /// Inverse of [`EngineSel::token`].
    pub fn parse_token(tok: &str) -> Option<EngineSel> {
        match tok {
            "heap" => Some(EngineSel::Heap),
            "cal" => Some(EngineSel::Calendar),
            "cala" => Some(EngineSel::CalendarAdaptive),
            _ => {
                let n = tok.strip_prefix("sh")?;
                let threads: u8 = n.parse().ok()?;
                (1..=8)
                    .contains(&threads)
                    .then_some(EngineSel::Sharded { threads })
            }
        }
    }
}

/// Which base arbitration algorithm orders candidates within a queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Arbiter {
    /// BLISS \[11\] — the paper's choice for all designs.
    Bliss,
    /// FR-FCFS — ablation only.
    FrFcfs,
}

/// DCA-specific knobs (§IV).
#[derive(Clone, Copy, Debug)]
pub struct DcaParams {
    /// Flushing factor: an LR with a row conflict may still issue when
    /// its bank's RRPC is below this (paper default FF-4).
    pub flushing_factor: u8,
    /// Algorithm 1 ScheduleAll turn-on occupancy (paper: 85 %).
    pub read_q_hi: f64,
    /// Algorithm 1 ScheduleAll turn-off occupancy (paper: 75 %).
    pub read_q_lo: f64,
}

impl Default for DcaParams {
    fn default() -> Self {
        DcaParams {
            flushing_factor: 4,
            read_q_hi: 0.85,
            read_q_lo: 0.75,
        }
    }
}

/// Banshee-style fill-gate knobs ([`Design::Banshee`]).
#[derive(Clone, Copy, Debug)]
pub struct BansheeParams {
    /// A page's miss fills are admitted only once its frequency counter
    /// has reached this value — the first `fill_threshold - 1` misses
    /// to a cold page bypass the cache.
    pub fill_threshold: u8,
    /// Saturation cap for the per-page frequency counters (Banshee uses
    /// small saturating counters in the page-table/TLB entries).
    pub counter_cap: u8,
}

impl Default for BansheeParams {
    fn default() -> Self {
        BansheeParams {
            fill_threshold: 2,
            counter_cap: 7,
        }
    }
}

/// Full system configuration.
#[derive(Clone, Copy, Debug)]
pub struct SystemConfig {
    /// Controller design under test.
    pub design: Design,
    /// DRAM-cache organisation (set-associative / direct-mapped).
    pub org_kind: OrgKind,
    /// DRAM-cache replacement policy (SRRIP default; warm-up drives the
    /// tag array through it, so it is part of the warm fingerprint).
    pub replacement: ReplacementPolicy,
    /// Bank-index mapping (plain or XOR remap \[9\]).
    pub mapping: MappingScheme,
    /// Base arbiter (paper: BLISS for everything).
    pub arbiter: Arbiter,
    /// Stacked-DRAM timing.
    pub timing: TimingParams,
    /// Stacked-DRAM organisation.
    pub dram_org: Organization,
    /// Off-chip main-memory backend behind the DRAM cache: the flat
    /// seed model (Table II's 50 ns + bus, the default — bit-identical
    /// to the pre-refactor simulator) or the cycle-level DDR4-style
    /// device.
    pub main_mem: MainMemConfig,
    /// Read-queue entries per channel (Table II: 64; 32 for ROD).
    pub read_q_cap: usize,
    /// Write-queue entries per channel (Table II: 64; 96 for ROD).
    pub write_q_cap: usize,
    /// Write-queue drain thresholds (Table II: 50 %/85 %).
    pub write_lo: f64,
    /// See [`SystemConfig::write_lo`].
    pub write_hi: f64,
    /// DCA knobs.
    pub dca: DcaParams,
    /// Banshee fill-gate knobs (consulted only by [`Design::Banshee`]).
    pub banshee: BansheeParams,
    /// Enable Lee et al. DRAM-aware L2 writeback \[20\] (Fig 19).
    pub lee_writeback: bool,
    /// Enable the MAP-I hit/miss predictor \[7\] (paper: on).
    pub predictor: bool,
    /// Instructions per core for the timing run.
    pub target_insts: u64,
    /// Functional warm-up memory operations per core before timing.
    pub warmup_ops: u64,
    /// Experiment seed.
    pub seed: u64,
    /// L1 hit latency in CPU cycles (Table II: 2).
    pub l1_lat_cycles: u64,
    /// L2 hit latency in CPU cycles (Table II: 20).
    pub l2_lat_cycles: u64,
    /// Shared L2 MSHR count.
    pub mshrs: usize,
    /// Record a detailed access timeline (examples/diagnostics only).
    pub record_timeline: bool,
    /// Event engine driving the run ([`EngineSel`]; default calendar).
    /// Results are bit-identical for every variant; the knob exists for
    /// A/B determinism tests and `perf_smoke` measurements.
    pub engine: EngineSel,
    /// **log2 of the calendar-queue slot width, in picoseconds** — shift
    /// 10 means `2^10 ps ≈ 1 ns` slots, so the 1024-bucket ring spans
    /// ~1 µs. A pure performance knob — delivery order, and hence every
    /// result, is identical for any value; the `event_clustered_*` and
    /// `event_rolling_window_*` microbenches bracket the trade-off.
    ///
    /// Valid range is `0..=`[`dca_sim_core::events::MAX_SLOT_SHIFT`]
    /// (40, a ring slot of ~18 minutes of simulated time): beyond that
    /// the slot-index computation `time >> shift` would exceed what the
    /// u64 picosecond clock can address and, in release builds, silently
    /// wrap the shift amount. [`SystemConfig::validate`] rejects such
    /// values up front instead of leaving them to a debug-only assert.
    ///
    /// Used by [`EngineSel::Calendar`] (fixed width) and as the starting
    /// width for [`EngineSel::Sharded`] shard queues; ignored by the
    /// heap engine, and only the *initial* width for
    /// [`EngineSel::CalendarAdaptive`].
    pub event_slot_shift: u32,
}

impl SystemConfig {
    /// Table II configuration for `design` × `org_kind`.
    pub fn paper(design: Design, org_kind: OrgKind) -> Self {
        let (read_q_cap, write_q_cap) = match design {
            Design::Rod => (32, 96),
            _ => (64, 64),
        };
        SystemConfig {
            design,
            org_kind,
            replacement: ReplacementPolicy::Srrip,
            mapping: MappingScheme::Direct,
            arbiter: Arbiter::Bliss,
            timing: TimingParams::paper_stacked(),
            dram_org: Organization::paper(),
            main_mem: MainMemConfig::paper_flat(),
            read_q_cap,
            write_q_cap,
            write_lo: 0.50,
            write_hi: 0.85,
            dca: DcaParams::default(),
            banshee: BansheeParams::default(),
            lee_writeback: false,
            predictor: true,
            target_insts: 2_000_000,
            warmup_ops: 400_000,
            seed: 0xDCA_2016,
            l1_lat_cycles: 2,
            l2_lat_cycles: 20,
            mshrs: 32,
            record_timeline: false,
            engine: EngineSel::Calendar,
            event_slot_shift: dca_sim_core::events::SLOT_SHIFT,
        }
    }

    /// Check knob ranges that would otherwise surface only as a panic
    /// (or, for oversized slot shifts in release builds, a silently
    /// wrapped shift amount) deep inside `System::assemble`.
    pub fn validate(&self) -> Result<(), String> {
        let max = dca_sim_core::events::MAX_SLOT_SHIFT;
        if self.event_slot_shift > max {
            return Err(format!(
                "event_slot_shift {} exceeds MAX_SLOT_SHIFT {} (log2 picoseconds; \
                 larger shifts overflow the ring-width computation)",
                self.event_slot_shift, max
            ));
        }
        if let EngineSel::Sharded { threads } = self.engine {
            if threads == 0 || threads > 8 {
                return Err(format!(
                    "sharded engine thread count {threads} outside 1..=8"
                ));
            }
        }
        Ok(())
    }

    /// Convenience: the paper config with the XOR remapping enabled.
    pub fn paper_remap(design: Design, org_kind: OrgKind) -> Self {
        let mut cfg = Self::paper(design, org_kind);
        cfg.mapping = MappingScheme::XorRemap;
        cfg
    }

    /// Convenience: the paper config with the cycle-level DDR4
    /// main-memory backend instead of the flat model.
    pub fn paper_cycle_mem(design: Design, org_kind: OrgKind) -> Self {
        let mut cfg = Self::paper(design, org_kind);
        cfg.main_mem = MainMemConfig::ddr4();
        cfg
    }

    /// Convenience: the paper config with the slow 3DXPoint-like
    /// cycle-level main memory — the regime where the DRAM cache stops
    /// being an optimisation and becomes load-bearing.
    pub fn paper_xpoint(design: Design, org_kind: OrgKind) -> Self {
        let mut cfg = Self::paper(design, org_kind);
        cfg.main_mem = MainMemConfig::xpoint();
        cfg
    }

    /// Scale the run length (both warm-up and timing) by `factor` — used
    /// by tests and quick benches.
    pub fn scaled(mut self, insts: u64, warmup: u64) -> Self {
        self.target_insts = insts;
        self.warmup_ops = warmup;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rod_gets_asymmetric_queues() {
        let cd = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped);
        let rod = SystemConfig::paper(Design::Rod, OrgKind::DirectMapped);
        let dca = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        assert_eq!((cd.read_q_cap, cd.write_q_cap), (64, 64));
        assert_eq!((rod.read_q_cap, rod.write_q_cap), (32, 96));
        assert_eq!((dca.read_q_cap, dca.write_q_cap), (64, 64));
    }

    #[test]
    fn labels() {
        assert_eq!(Design::Cd.label(), "CD");
        assert_eq!(Design::Rod.label(), "ROD");
        assert_eq!(Design::Dca.label(), "DCA");
        assert_eq!(Design::Banshee.label(), "BAN");
        assert_eq!(Design::ALL.len(), 4);
    }

    #[test]
    fn banshee_gets_cd_queues_and_srrip_default() {
        let ban = SystemConfig::paper(Design::Banshee, OrgKind::DirectMapped);
        assert_eq!((ban.read_q_cap, ban.write_q_cap), (64, 64));
        assert_eq!(ban.replacement, ReplacementPolicy::Srrip);
        assert_eq!(ban.banshee.fill_threshold, 2);
        assert!(ban.banshee.counter_cap >= ban.banshee.fill_threshold);
    }

    #[test]
    fn xpoint_variant_flips_main_mem_only() {
        let a = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        let b = SystemConfig::paper_xpoint(Design::Dca, OrgKind::DirectMapped);
        assert!(!a.main_mem.is_cycle());
        assert!(b.main_mem.is_cycle());
        assert_eq!(a.read_q_cap, b.read_q_cap);
    }

    #[test]
    fn dca_defaults_match_paper() {
        let d = DcaParams::default();
        assert_eq!(d.flushing_factor, 4);
        assert_eq!(d.read_q_hi, 0.85);
        assert_eq!(d.read_q_lo, 0.75);
    }

    #[test]
    fn engine_tokens_round_trip() {
        let all = [
            EngineSel::Heap,
            EngineSel::Calendar,
            EngineSel::CalendarAdaptive,
            EngineSel::Sharded { threads: 1 },
            EngineSel::Sharded { threads: 4 },
        ];
        for e in all {
            assert_eq!(EngineSel::parse_token(&e.token()), Some(e));
        }
        assert_eq!(EngineSel::parse_token("sh0"), None);
        assert_eq!(EngineSel::parse_token("sh9"), None);
        assert_eq!(EngineSel::parse_token("sh"), None);
        assert_eq!(EngineSel::parse_token("turbo"), None);
        assert_eq!(EngineSel::default(), EngineSel::Calendar);
    }

    #[test]
    fn validate_rejects_overflowing_slot_shift_and_bad_threads() {
        let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        assert!(cfg.validate().is_ok());
        cfg.event_slot_shift = dca_sim_core::events::MAX_SLOT_SHIFT;
        assert!(cfg.validate().is_ok());
        cfg.event_slot_shift = dca_sim_core::events::MAX_SLOT_SHIFT + 1;
        assert!(cfg.validate().is_err());
        cfg.event_slot_shift = dca_sim_core::events::SLOT_SHIFT;
        cfg.engine = EngineSel::Sharded { threads: 0 };
        assert!(cfg.validate().is_err());
        cfg.engine = EngineSel::Sharded { threads: 9 };
        assert!(cfg.validate().is_err());
        cfg.engine = EngineSel::Sharded { threads: 4 };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn remap_variant_flips_mapping_only() {
        let a = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        let b = SystemConfig::paper_remap(Design::Dca, OrgKind::DirectMapped);
        assert_eq!(a.mapping, MappingScheme::Direct);
        assert_eq!(b.mapping, MappingScheme::XorRemap);
        assert_eq!(a.read_q_cap, b.read_q_cap);
    }
}
