//! Per-run reports: everything the paper's figures consume.

use dca_mem_hier::MainMemStats;
use dca_metrics::LatencyStat;
use dca_sim_core::SimTime;

use crate::controller::CtrlStats;
use crate::timeline::Timeline;

/// Per-core outcome.
#[derive(Clone, Debug)]
pub struct CoreReport {
    /// Benchmark name on this core.
    pub bench: String,
    /// Instructions retired.
    pub insts: u64,
    /// Cycles at 4 GHz.
    pub cycles: u64,
    /// Instructions per cycle.
    pub ipc: f64,
}

/// Per-channel device + controller outcome.
#[derive(Clone, Debug)]
pub struct ChannelReport {
    /// Read accesses issued to the device.
    pub reads: u64,
    /// Write accesses issued to the device.
    pub writes: u64,
    /// Bus direction switches.
    pub turnarounds: u64,
    /// Accesses per turnaround (Figs 14–15 metric).
    pub accesses_per_turnaround: f64,
    /// Row-buffer hit rate over read accesses (Figs 16–17 metric).
    pub read_row_hit_rate: f64,
    /// Read accesses that row-conflicted.
    pub read_row_conflicts: u64,
    /// Controller counters.
    pub ctrl: CtrlStats,
}

/// The full result of one simulation.
#[derive(Clone, Debug)]
pub struct SystemReport {
    /// Per-core results, in core order.
    pub cores: Vec<CoreReport>,
    /// Per-channel results.
    pub channels: Vec<ChannelReport>,
    /// L2 miss latency (demand reads to the DRAM cache), Figs 12–13.
    pub l2_miss_latency: LatencyStat,
    /// DRAM-cache demand-read hits.
    pub cache_read_hits: u64,
    /// DRAM-cache demand-read misses.
    pub cache_read_misses: u64,
    /// MAP-I prediction accuracy.
    pub predictor_accuracy: f64,
    /// Main-memory reads.
    pub mem_reads: u64,
    /// Main-memory writes.
    pub mem_writes: u64,
    /// Main-memory device statistics (backend, queue occupancy, row hit
    /// rate, bus busy time). For the flat backend only the traffic and
    /// bus-busy counters are populated.
    pub main_mem: MainMemStats,
    /// Writeback requests presented to the DRAM cache.
    pub writeback_requests: u64,
    /// Refill requests presented to the DRAM cache.
    pub refill_requests: u64,
    /// Miss fills admitted into the cache (equals `refill_requests` for
    /// every design except Banshee, whose frequency gate filters them).
    pub cache_fills: u64,
    /// Miss fills the Banshee-style frequency gate bypassed (0 for the
    /// other designs): the block answered the cores but was not
    /// installed, saving the fill's DRAM-cache write traffic.
    pub fill_bypasses: u64,
    /// Final simulated time.
    pub end_time: SimTime,
    /// Events the engine delivered over the run (throughput denominator
    /// for the `perf_smoke` harness).
    pub events_processed: u64,
    /// Optional detailed access timeline (when configured).
    pub timeline: Option<Timeline>,
}

impl SystemReport {
    /// DRAM-cache demand-read hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_read_hits + self.cache_read_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_read_hits as f64 / total as f64
        }
    }

    /// Fraction of miss fills the fill gate bypassed (0 when every fill
    /// was admitted — i.e. for every design except Banshee).
    pub fn fill_bypass_rate(&self) -> f64 {
        let total = self.cache_fills + self.fill_bypasses;
        if total == 0 {
            0.0
        } else {
            self.fill_bypasses as f64 / total as f64
        }
    }

    /// Per-core IPC vector (weighted-speedup input).
    pub fn ipcs(&self) -> Vec<f64> {
        self.cores.iter().map(|c| c.ipc).collect()
    }

    /// Device-wide accesses per turnaround (weighted by accesses).
    pub fn accesses_per_turnaround(&self) -> f64 {
        let accesses: u64 = self.channels.iter().map(|c| c.reads + c.writes).sum();
        let turnarounds: u64 = self.channels.iter().map(|c| c.turnarounds).sum();
        if turnarounds == 0 {
            accesses as f64
        } else {
            accesses as f64 / turnarounds as f64
        }
    }

    /// Device-wide read row-buffer hit rate (weighted by reads).
    pub fn read_row_hit_rate(&self) -> f64 {
        let reads: u64 = self.channels.iter().map(|c| c.reads).sum();
        if reads == 0 {
            return 0.0;
        }
        let hits: f64 = self
            .channels
            .iter()
            .map(|c| c.read_row_hit_rate * c.reads as f64)
            .sum();
        hits / reads as f64
    }
}
