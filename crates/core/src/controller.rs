//! The per-channel DRAM-cache controller: CD, ROD, DCA and the
//! Banshee-style BAN.
//!
//! All designs share the same machinery — a bounded read queue, a
//! bounded write queue, a base arbiter (BLISS), and the two-threshold
//! write-drain policy — and differ *only* in:
//!
//! 1. **queue placement** ([`ChannelController::enqueue`]): CD, DCA and
//!    BAN place accesses by access type; ROD places them by request type
//!    (with the paper's footnote: a read request's tag write still goes
//!    to the write queue). BAN's defining mechanism — the frequency-
//!    gated fill — lives upstream in the system's refill submission,
//!    not here: its controller scheduling is CD's;
//! 2. **read-queue arbitration** ([`ChannelController::schedule_one`]):
//!    CD and ROD arbitrate over every read-queue entry; DCA normally
//!    arbitrates over priority reads only, holding low-priority reads
//!    back and releasing them through the Opportunistic Flushing Scheme
//!    or Algorithm 1's occupancy band.
//!
//! The scheduling slot ordering implemented here follows §IV:
//! forced write drain → PRs (or all reads) → OFS LR flushing (DCA) →
//! opportunistic write drain.

use dca_dram::{AccessKind, DramChannel, IssueInfo, RowOutcome};
use dca_dram_cache::{AccessRole, AccessSpec, CacheReqKind, RequestId};
use dca_sched::{AccessQueue, Bliss, DrainPolicy, FrFcfs, Hysteresis, QueueEntry, ReadClass};
use dca_sim_core::{Counter, SimTime};
use std::collections::VecDeque;

use crate::config::{Arbiter, Design, SystemConfig};
use crate::rrpc::Rrpc;

/// Controller statistics (per channel).
#[derive(Clone, Debug, Default)]
pub struct CtrlStats {
    /// Priority reads served.
    pub pr_served: Counter,
    /// Low-priority reads served (from the read queue).
    pub lr_served: Counter,
    /// Writes served.
    pub writes_served: Counter,
    /// LRs admitted by OFS because the bank row state was friendly.
    pub ofs_row_friendly: Counter,
    /// LRs admitted by OFS because the bank's RRPC was cold.
    pub ofs_rrpc_cold: Counter,
    /// Scheduling slots spent in forced write drain.
    pub forced_drain_slots: Counter,
    /// Entries that overflowed a bounded queue into the spill buffer.
    pub spilled: Counter,
    /// Times Algorithm 1's ScheduleAll band was entered.
    pub sched_all_entries: Counter,
    /// Total picoseconds priority reads spent queued.
    pub pr_wait_ps: u64,
    /// Total picoseconds low-priority reads spent queued.
    pub lr_wait_ps: u64,
    /// Total picoseconds writes spent queued.
    pub write_wait_ps: u64,
}

impl CtrlStats {
    /// Mean queue wait of priority reads, in nanoseconds.
    pub fn pr_wait_ns(&self) -> f64 {
        if self.pr_served.get() == 0 {
            0.0
        } else {
            self.pr_wait_ps as f64 / self.pr_served.get() as f64 / 1000.0
        }
    }

    /// Mean queue wait of low-priority reads, in nanoseconds.
    pub fn lr_wait_ns(&self) -> f64 {
        if self.lr_served.get() == 0 {
            0.0
        } else {
            self.lr_wait_ps as f64 / self.lr_served.get() as f64 / 1000.0
        }
    }

    /// Mean queue wait of writes, in nanoseconds.
    pub fn write_wait_ns(&self) -> f64 {
        if self.writes_served.get() == 0 {
            0.0
        } else {
            self.write_wait_ps as f64 / self.writes_served.get() as f64 / 1000.0
        }
    }
}

/// An access the controller has issued to the device.
#[derive(Clone, Copy, Debug)]
pub struct Issued {
    /// The queue entry that was issued.
    pub entry: QueueEntry,
    /// Device timing for it.
    pub info: IssueInfo,
    /// Whether it came from the write queue.
    pub from_write_q: bool,
}

/// Metadata the controller keeps per enqueued access, so completions can
/// be routed back to their request FSM.
#[derive(Clone, Copy, Debug)]
pub struct AccessMeta {
    /// Owning request.
    pub request: RequestId,
    /// Role within the request.
    pub role: AccessRole,
}

/// One channel's controller.
pub struct ChannelController {
    design: Design,
    arbiter: Arbiter,
    channel_index: u32,
    banks_per_channel: u32,
    read_q: AccessQueue,
    write_q: AccessQueue,
    /// Overflow buffers: accesses that must eventually enter a bounded
    /// queue (FSM-generated work cannot be refused without deadlock).
    spill_read: VecDeque<QueueEntry>,
    spill_write: VecDeque<QueueEntry>,
    bliss: Bliss,
    frfcfs: FrFcfs,
    drain: DrainPolicy,
    sched_all: Hysteresis,
    flushing_factor: u8,
    stats: CtrlStats,
    was_sched_all: bool,
    /// Sticky opportunistic-drain mode: once the controller starts an
    /// opportunistic write drain it keeps draining until the queue falls
    /// below the low mark or demand reads arrive — batching writes to
    /// amortise the bus turnaround, as a real drain burst would.
    opp_drain: bool,
}

impl ChannelController {
    /// A controller for channel `channel_index` configured per `cfg`.
    pub fn new(cfg: &SystemConfig, channel_index: u32) -> Self {
        ChannelController {
            design: cfg.design,
            arbiter: cfg.arbiter,
            channel_index,
            banks_per_channel: cfg.dram_org.banks_per_channel(),
            read_q: AccessQueue::new(cfg.read_q_cap),
            write_q: AccessQueue::new(cfg.write_q_cap),
            spill_read: VecDeque::new(),
            spill_write: VecDeque::new(),
            bliss: Bliss::new(),
            frfcfs: FrFcfs::new(),
            drain: DrainPolicy::new(cfg.write_lo, cfg.write_hi),
            sched_all: Hysteresis::new(cfg.dca.read_q_lo, cfg.dca.read_q_hi),
            flushing_factor: cfg.dca.flushing_factor,
            stats: CtrlStats::default(),
            was_sched_all: false,
            opp_drain: false,
        }
    }

    /// Design under test.
    pub fn design(&self) -> Design {
        self.design
    }

    /// Statistics so far.
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Read-queue occupancy (bounded queue only).
    pub fn read_occupancy(&self) -> f64 {
        self.read_q.occupancy()
    }

    /// Write-queue occupancy (bounded queue only).
    pub fn write_occupancy(&self) -> f64 {
        self.write_q.occupancy()
    }

    /// Total queued accesses, including spill buffers.
    pub fn backlog(&self) -> usize {
        self.read_q.len() + self.write_q.len() + self.spill_read.len() + self.spill_write.len()
    }

    /// Whether the bounded queues have room for a whole request's worth
    /// of accesses — the admission gate for new cache requests.
    pub fn can_admit(&self) -> bool {
        self.spill_read.is_empty()
            && self.spill_write.is_empty()
            && self.read_q.len() + 3 <= self.read_q.capacity()
            && self.write_q.len() + 3 <= self.write_q.capacity()
    }

    /// Queue placement (the design-defining function, Fig 3 / Fig 6).
    fn target_is_write_q(&self, spec: &AccessSpec, req_kind: CacheReqKind) -> bool {
        match self.design {
            // CD, DCA and Banshee: by access type (Banshee reshapes the
            // *fill stream*, not the queue placement).
            Design::Cd | Design::Dca | Design::Banshee => spec.access.kind == AccessKind::Write,
            // ROD: by request type, except a read request's tag write
            // which goes to the write queue (§III-B footnote).
            Design::Rod => match req_kind {
                CacheReqKind::Read => spec.access.kind == AccessKind::Write,
                CacheReqKind::Writeback | CacheReqKind::Refill => true,
            },
        }
    }

    /// Enqueue one translated access.
    pub fn enqueue(
        &mut self,
        id: u64,
        spec: AccessSpec,
        req_kind: CacheReqKind,
        app: u8,
        now: SimTime,
    ) {
        let entry = QueueEntry {
            id,
            access: spec.access,
            app,
            class: spec.class,
            enqueued_at: now,
        };
        if self.target_is_write_q(&spec, req_kind) {
            if let Err(e) = self.write_q.push(entry) {
                self.stats.spilled.inc();
                self.spill_write.push_back(e);
            }
        } else if let Err(e) = self.read_q.push(entry) {
            self.stats.spilled.inc();
            self.spill_read.push_back(e);
        }
    }

    /// Move spilled entries into the bounded queues as room appears.
    fn drain_spill(&mut self) {
        while let Some(e) = self.spill_read.front() {
            if self.read_q.is_full() {
                break;
            }
            let e = *e;
            self.spill_read.pop_front();
            self.read_q.push(e).expect("read_q had room");
        }
        while let Some(e) = self.spill_write.front() {
            if self.write_q.is_full() {
                break;
            }
            let e = *e;
            self.spill_write.pop_front();
            self.write_q.push(e).expect("write_q had room");
        }
    }

    /// "Are demand reads pending?" for the drain policy: CD/ROD count any
    /// read-queue entry; DCA counts only PRs (LRs are held like writes).
    /// O(1): the queue tracks its PR population incrementally.
    fn reads_pending(&self) -> bool {
        match self.design {
            Design::Cd | Design::Rod | Design::Banshee => !self.read_q.is_empty(),
            Design::Dca => self.read_q.priority_count() > 0,
        }
    }

    /// Arbitrate among `candidates` with the configured base arbiter.
    /// Takes the candidate iterator directly — no per-slot `Vec` is ever
    /// materialised on the scheduling path.
    fn pick<'a, I>(&self, candidates: I, ch: &DramChannel) -> Option<usize>
    where
        I: IntoIterator<Item = (usize, &'a QueueEntry)>,
    {
        let outcome = |e: &QueueEntry| ch.peek_outcome(e.access.bank, e.access.row);
        match self.arbiter {
            Arbiter::Bliss => self.bliss.pick(candidates, outcome),
            Arbiter::FrFcfs => self.frfcfs.pick(candidates, outcome),
        }
    }

    /// Arbitrate over bank-free write-queue entries — the shared
    /// candidate set of all three drain modes (forced, sticky,
    /// opportunistic).
    fn pick_write(&self, ch: &DramChannel, now: SimTime) -> Option<usize> {
        self.pick(
            self.write_q
                .iter()
                .filter(|(_, e)| ch.bank_free(e.access.bank, now)),
            ch,
        )
    }

    /// Issue the entry at `pos` of the read or write queue.
    fn issue_at(
        &mut self,
        pos: usize,
        from_write_q: bool,
        ch: &mut DramChannel,
        rrpc: &mut Rrpc,
        now: SimTime,
    ) -> Issued {
        let entry = if from_write_q {
            self.write_q.remove(pos)
        } else {
            self.read_q.remove(pos)
        };
        let info = ch.issue(entry.access, now);
        self.bliss.on_service(entry.app, now);
        let waited = now.since(entry.enqueued_at).ps();
        if entry.access.kind == AccessKind::Read {
            match entry.class {
                ReadClass::Priority => {
                    self.stats.pr_served.inc();
                    self.stats.pr_wait_ps += waited;
                    rrpc.on_priority_read(
                        self.channel_index * self.banks_per_channel + entry.access.bank,
                    );
                }
                ReadClass::LowPriority => {
                    self.stats.lr_served.inc();
                    self.stats.lr_wait_ps += waited;
                }
            }
        } else {
            self.stats.writes_served.inc();
            self.stats.write_wait_ps += waited;
        }
        self.drain_spill();
        Issued {
            entry,
            info,
            from_write_q,
        }
    }

    /// One scheduling slot: choose and issue at most one access.
    ///
    /// Returns `None` when nothing can issue right now (queues empty, all
    /// candidate banks busy, or policy holds everything back).
    pub fn schedule_one(
        &mut self,
        ch: &mut DramChannel,
        rrpc: &mut Rrpc,
        now: SimTime,
    ) -> Option<Issued> {
        self.drain_spill();
        self.bliss.maybe_clear(now);

        let reads_pending = self.reads_pending();
        let wq_occ = self.write_q.occupancy();

        // Sticky opportunistic drain: exits when demand reads arrive or
        // the queue reaches the low mark.
        if self.opp_drain && (reads_pending || !self.drain.opportunistic(wq_occ, reads_pending)) {
            self.opp_drain = false;
        }

        // Phase 1: forced write drain (write queue past the high mark).
        // The drain holds the bus for writes until the low mark is
        // reached — batching writes is what keeps turnarounds rare.
        if self.drain.update_forced(wq_occ) {
            self.stats.forced_drain_slots.inc();
            if let Some(pos) = self.pick_write(ch, now) {
                return Some(self.issue_at(pos, true, ch, rrpc, now));
            }
            return None;
        }

        // Sticky drain in progress: keep serving writes ahead of LR/OFS
        // work (demand reads already cleared the mode above).
        if self.opp_drain {
            if let Some(pos) = self.pick_write(ch, now) {
                return Some(self.issue_at(pos, true, ch, rrpc, now));
            }
        }

        // Phase 2: reads. DCA restricts to PRs unless Algorithm 1's
        // occupancy band says schedule everything.
        let sched_all = match self.design {
            Design::Dca => {
                let active = self.sched_all.update(self.read_q.occupancy());
                if active && !self.was_sched_all {
                    self.stats.sched_all_entries.inc();
                }
                self.was_sched_all = active;
                active
            }
            _ => true,
        };
        let picked = self.pick(
            self.read_q
                .iter()
                .filter(|(_, e)| ch.bank_free(e.access.bank, now))
                .filter(|(_, e)| sched_all || e.class == ReadClass::Priority),
            ch,
        );
        if let Some(pos) = picked {
            return Some(self.issue_at(pos, false, ch, rrpc, now));
        }

        // Phase 3 (DCA only): Opportunistic Flushing Scheme for LRs.
        // Row-friendly LRs (hit or closed bank) are preferred over cold-
        // bank conflict admissions across the whole pool, so DCA's LR
        // stream keeps the row-buffer locality that CD's interleaving
        // destroys (Figs 16–17).
        if self.design == Design::Dca && !sched_all {
            let picked = self.pick(
                self.read_q.iter().filter(|(_, e)| {
                    e.class == ReadClass::LowPriority
                        && ch.bank_free(e.access.bank, now)
                        && ch.peek_outcome(e.access.bank, e.access.row) != RowOutcome::Conflict
                }),
                ch,
            );
            if let Some(pos) = picked {
                self.stats.ofs_row_friendly.inc();
                return Some(self.issue_at(pos, false, ch, rrpc, now));
            }
            let rrpc_ref: &Rrpc = rrpc;
            let picked = self.pick(
                self.read_q.iter().filter(|(_, e)| {
                    e.class == ReadClass::LowPriority
                        && ch.bank_free(e.access.bank, now)
                        && rrpc_ref.is_cold(
                            self.channel_index * self.banks_per_channel + e.access.bank,
                            self.flushing_factor,
                        )
                }),
                ch,
            );
            if let Some(pos) = picked {
                self.stats.ofs_rrpc_cold.inc();
                return Some(self.issue_at(pos, false, ch, rrpc, now));
            }
        }

        // Phase 4: opportunistic write drain when the read path is idle.
        if self.drain.opportunistic(wq_occ, reads_pending) {
            if let Some(pos) = self.pick_write(ch, now) {
                self.opp_drain = true;
                return Some(self.issue_at(pos, true, ch, rrpc, now));
            }
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dca_dram::{BurstLen, DramAccess, Organization, TimingParams};
    use dca_dram_cache::OrgKind;

    fn channel() -> DramChannel {
        DramChannel::new(TimingParams::paper_stacked(), &Organization::paper())
    }

    fn ctrl(design: Design) -> (ChannelController, Rrpc) {
        let cfg = SystemConfig::paper(design, OrgKind::DirectMapped);
        (
            ChannelController::new(&cfg, 0),
            Rrpc::new(cfg.dram_org.total_banks()),
        )
    }

    fn spec(bank: u32, row: u32, kind: AccessKind, class: ReadClass) -> AccessSpec {
        AccessSpec {
            access: DramAccess {
                bank,
                row,
                kind,
                burst: BurstLen::Block64,
            },
            role: if kind == AccessKind::Read {
                AccessRole::TagRead
            } else {
                AccessRole::TagWrite
            },
            class,
        }
    }

    #[test]
    fn cd_routes_by_access_type() {
        let (mut c, _) = ctrl(Design::Cd);
        // A writeback's tag READ still lands in the read queue under CD —
        // the root of read priority inversion.
        c.enqueue(
            0,
            spec(0, 0, AccessKind::Read, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime::ZERO,
        );
        c.enqueue(
            1,
            spec(0, 0, AccessKind::Write, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime::ZERO,
        );
        assert_eq!(c.read_q.len(), 1);
        assert_eq!(c.write_q.len(), 1);
    }

    #[test]
    fn banshee_routes_like_cd_and_schedules_all_reads() {
        let (mut c, mut r) = ctrl(Design::Banshee);
        // By access type: a writeback's tag read lands in the read queue.
        c.enqueue(
            0,
            spec(0, 5, AccessKind::Read, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime(0),
        );
        c.enqueue(
            1,
            spec(0, 0, AccessKind::Write, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime(0),
        );
        assert_eq!(c.read_q.len(), 1);
        assert_eq!(c.write_q.len(), 1);
        // And the LR is schedulable immediately — no DCA-style holdback.
        let mut ch = channel();
        let issued = c.schedule_one(&mut ch, &mut r, SimTime(20)).unwrap();
        assert_eq!(issued.entry.class, ReadClass::LowPriority);
    }

    #[test]
    fn rod_routes_by_request_type() {
        let (mut c, _) = ctrl(Design::Rod);
        // Writeback tag read → write queue under ROD.
        c.enqueue(
            0,
            spec(0, 0, AccessKind::Read, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime::ZERO,
        );
        // Read request's tag write → write queue (footnote).
        c.enqueue(
            1,
            spec(0, 0, AccessKind::Write, ReadClass::LowPriority),
            CacheReqKind::Read,
            0,
            SimTime::ZERO,
        );
        // Read request's data read → read queue.
        c.enqueue(
            2,
            spec(0, 0, AccessKind::Read, ReadClass::Priority),
            CacheReqKind::Read,
            0,
            SimTime::ZERO,
        );
        assert_eq!(c.read_q.len(), 1);
        assert_eq!(c.write_q.len(), 2);
    }

    #[test]
    fn cd_schedules_lr_ahead_of_pr_when_older() {
        // The priority-inversion mechanic: CD's arbiter sees one read
        // queue and (ceteris paribus) serves the older LR first.
        let (mut c, mut r) = ctrl(Design::Cd);
        let mut ch = channel();
        c.enqueue(
            0,
            spec(0, 5, AccessKind::Read, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime(0),
        );
        c.enqueue(
            1,
            spec(1, 7, AccessKind::Read, ReadClass::Priority),
            CacheReqKind::Read,
            1,
            SimTime(10),
        );
        let issued = c.schedule_one(&mut ch, &mut r, SimTime(20)).unwrap();
        assert_eq!(issued.entry.class, ReadClass::LowPriority, "CD inverts");
    }

    #[test]
    fn dca_holds_lr_and_serves_pr_first() {
        let (mut c, mut r) = ctrl(Design::Dca);
        let mut ch = channel();
        c.enqueue(
            0,
            spec(0, 5, AccessKind::Read, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime(0),
        );
        c.enqueue(
            1,
            spec(1, 7, AccessKind::Read, ReadClass::Priority),
            CacheReqKind::Read,
            1,
            SimTime(10),
        );
        let issued = c.schedule_one(&mut ch, &mut r, SimTime(20)).unwrap();
        assert_eq!(
            issued.entry.class,
            ReadClass::Priority,
            "DCA serves the younger PR first"
        );
        assert_eq!(c.stats().pr_served.get(), 1);
    }

    #[test]
    fn dca_ofs_releases_lr_when_no_pr_pending() {
        let (mut c, mut r) = ctrl(Design::Dca);
        let mut ch = channel();
        c.enqueue(
            0,
            spec(0, 5, AccessKind::Read, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime(0),
        );
        // Bank 0 is closed → row-friendly → OFS admits.
        let issued = c.schedule_one(&mut ch, &mut r, SimTime(10)).unwrap();
        assert_eq!(issued.entry.class, ReadClass::LowPriority);
        assert_eq!(c.stats().ofs_row_friendly.get(), 1);
    }

    #[test]
    fn dca_ofs_blocks_conflicting_lr_on_hot_bank() {
        let (mut c, mut r) = ctrl(Design::Dca);
        let mut ch = channel();
        // Heat bank 0 with PR traffic and open row 1.
        let pr = ch.issue(DramAccess::read(0, 1), SimTime::ZERO);
        r.on_priority_read(0); // global bank 0 of channel 0
                               // LR to bank 0, *different row* → conflict; RRPC hot → hold.
        c.enqueue(
            0,
            spec(0, 9, AccessKind::Read, ReadClass::LowPriority),
            CacheReqKind::Writeback,
            0,
            SimTime(0),
        );
        let after = pr.burst_end;
        assert!(c.schedule_one(&mut ch, &mut r, after).is_none());
        // Cool the bank below FF-4 (7 → 3 takes four decays).
        for b in 1..5u32 {
            r.on_priority_read(b);
        }
        let issued = c.schedule_one(&mut ch, &mut r, after).unwrap();
        assert_eq!(issued.entry.class, ReadClass::LowPriority);
        assert_eq!(c.stats().ofs_rrpc_cold.get(), 1);
    }

    #[test]
    fn forced_drain_blocks_reads_until_low_mark() {
        let (mut c, mut r) = ctrl(Design::Cd);
        let mut ch = channel();
        // Fill write queue past 85% of 64 = 55 entries.
        for i in 0..56 {
            c.enqueue(
                i,
                spec(
                    (i % 16) as u32,
                    0,
                    AccessKind::Write,
                    ReadClass::LowPriority,
                ),
                CacheReqKind::Writeback,
                0,
                SimTime(0),
            );
        }
        c.enqueue(
            99,
            spec(0, 3, AccessKind::Read, ReadClass::Priority),
            CacheReqKind::Read,
            0,
            SimTime(0),
        );
        let issued = c.schedule_one(&mut ch, &mut r, SimTime(10)).unwrap();
        assert!(issued.from_write_q, "forced drain serves writes first");
        assert!(c.stats().forced_drain_slots.get() >= 1);
    }

    #[test]
    fn opportunistic_drain_when_no_reads() {
        let (mut c, mut r) = ctrl(Design::Cd);
        let mut ch = channel();
        // 60% full write queue (> lo=50%), empty read queue.
        for i in 0..39 {
            c.enqueue(
                i,
                spec(
                    (i % 16) as u32,
                    0,
                    AccessKind::Write,
                    ReadClass::LowPriority,
                ),
                CacheReqKind::Writeback,
                0,
                SimTime(0),
            );
        }
        let issued = c.schedule_one(&mut ch, &mut r, SimTime(10)).unwrap();
        assert!(issued.from_write_q);
    }

    #[test]
    fn below_low_mark_writes_wait() {
        let (mut c, mut r) = ctrl(Design::Cd);
        let mut ch = channel();
        for i in 0..10 {
            c.enqueue(
                i,
                spec(
                    (i % 16) as u32,
                    0,
                    AccessKind::Write,
                    ReadClass::LowPriority,
                ),
                CacheReqKind::Writeback,
                0,
                SimTime(0),
            );
        }
        assert!(c.schedule_one(&mut ch, &mut r, SimTime(10)).is_none());
    }

    #[test]
    fn spill_buffers_absorb_overflow_and_refill() {
        let (mut c, mut r) = ctrl(Design::Cd);
        let mut ch = channel();
        // Overfill the 64-entry read queue.
        for i in 0..70 {
            c.enqueue(
                i,
                spec(
                    (i % 16) as u32,
                    i as u32,
                    AccessKind::Read,
                    ReadClass::Priority,
                ),
                CacheReqKind::Read,
                0,
                SimTime(0),
            );
        }
        assert_eq!(c.read_q.len(), 64);
        assert_eq!(c.backlog(), 70);
        assert!(c.stats().spilled.get() == 6);
        assert!(!c.can_admit());
        // Issue one; spill refills the queue.
        c.schedule_one(&mut ch, &mut r, SimTime(10)).unwrap();
        assert_eq!(c.read_q.len(), 64);
        assert_eq!(c.backlog(), 69);
    }

    #[test]
    fn busy_banks_block_scheduling() {
        let (mut c, mut r) = ctrl(Design::Cd);
        let mut ch = channel();
        let first = ch.issue(DramAccess::read(3, 1), SimTime::ZERO);
        c.enqueue(
            0,
            spec(3, 2, AccessKind::Read, ReadClass::Priority),
            CacheReqKind::Read,
            0,
            SimTime(0),
        );
        assert!(
            c.schedule_one(&mut ch, &mut r, SimTime(100)).is_none(),
            "bank 3 busy until {:?}",
            first.burst_end
        );
        assert!(c.schedule_one(&mut ch, &mut r, first.burst_end).is_some());
    }

    #[test]
    fn dca_schedule_all_band_admits_lrs_under_pressure() {
        let (mut c, mut r) = ctrl(Design::Dca);
        let mut ch = channel();
        // Fill the read queue past 85% with LRs on *hot* conflicting banks
        // so OFS would refuse them, then verify ScheduleAll releases them.
        for b in 0..16u32 {
            ch.issue(DramAccess::read(b, 1), SimTime::ZERO);
            r.on_priority_read(b);
        }
        // Re-heat so all RRPCs are high.
        for b in 0..16u32 {
            r.on_priority_read(b);
        }
        for i in 0..60u64 {
            c.enqueue(
                i,
                spec((i % 16) as u32, 9, AccessKind::Read, ReadClass::LowPriority),
                CacheReqKind::Writeback,
                0,
                SimTime(0),
            );
        }
        // Banks all busy until their bursts end; pick a late time.
        let t = SimTime(1_000_000);
        let issued = c.schedule_one(&mut ch, &mut r, t).unwrap();
        assert_eq!(issued.entry.class, ReadClass::LowPriority);
        assert!(c.stats().sched_all_entries.get() >= 1);
    }
}
