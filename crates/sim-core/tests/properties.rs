//! Property-based tests for the simulation substrate.

use dca_sim_core::{
    BaselineEventQueue, Duration, EventQueue, Histogram, RunningMean, SeedSplitter, SimTime,
};
use proptest::prelude::*;

proptest! {
    /// The self-tuning queue is observationally identical to the heap
    /// oracle under any workload of dense and sparse arrival phases —
    /// sized so the EWMA density tracker crosses its hysteresis band
    /// and rebuilds the ring in both directions mid-stream. Every pop
    /// delivers the exact same `(time, value)` pair, and `peek_key`
    /// always announces exactly the event `pop` then delivers (both
    /// queues assign identical `(time, seq)` keys for identical push
    /// sequences).
    #[test]
    fn adaptive_resizes_never_reorder_or_drop_events(
        phases in prop::collection::vec((any::<bool>(), 64u64..1500), 2..8),
        seed in any::<u64>(),
    ) {
        let mut q = EventQueue::adaptive();
        let mut oracle = BaselineEventQueue::new();
        let mut rng = seed | 1;
        let mut id = 0u64;
        for &(dense, n) in &phases {
            for _ in 0..n {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                let dt = if dense { rng % 8 } else { 3 * 1024 + rng % 4096 };
                let at = SimTime(q.now().ps() + dt);
                q.push(at, id);
                oracle.push(at, id);
                id += 1;
                if rng & 3 == 0 {
                    prop_assert_eq!(q.peek_key(), oracle.peek_key());
                    prop_assert_eq!(q.pop(), oracle.pop());
                }
            }
        }
        while let Some(got) = q.pop() {
            prop_assert_eq!(Some(got), oracle.pop());
        }
        prop_assert!(oracle.pop().is_none());
        prop_assert_eq!(q.counters(), oracle.counters());
    }

    /// Caller-keyed pushes (`push_keyed`) merge identically on both
    /// queue implementations for any (time, unique-key) pattern — the
    /// contract the sharded engine's cross-shard merge rests on.
    #[test]
    fn keyed_pushes_merge_identically(
        evs in prop::collection::vec((0u64..10_000, 0u64..1 << 20), 1..300)
    ) {
        let mut q = EventQueue::adaptive();
        let mut oracle = BaselineEventQueue::new();
        for (i, &(t, k)) in evs.iter().enumerate() {
            // Keys made unique by construction (i < 512): duplicate
            // (time, key) pairs would have no defined relative order.
            let key = (k << 9) | i as u64;
            q.push_keyed(SimTime(t), key, i);
            oracle.push_keyed(SimTime(t), key, i);
        }
        while let Some(got) = q.pop() {
            prop_assert_eq!(Some(got), oracle.pop());
        }
        prop_assert!(oracle.pop().is_none());
    }

    /// The event queue delivers exactly the multiset of pushed events, in
    /// nondecreasing time order, with ties in insertion order.
    #[test]
    fn event_queue_is_a_stable_time_sort(times in prop::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort_by_key(|&(t, i)| (t, i));
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.ps(), i));
        }
        prop_assert_eq!(got, expected);
        prop_assert_eq!(q.counters().0, q.counters().1);
    }

    /// Interleaved push/pop never violates monotonic delivery.
    #[test]
    fn event_queue_monotonic_under_interleaving(
        ops in prop::collection::vec((0u64..1000, any::<bool>()), 1..300)
    ) {
        let mut q = EventQueue::new();
        let mut last = SimTime::ZERO;
        for (dt, do_pop) in ops {
            // Schedule relative to *now* so pushes are always legal.
            let at = SimTime(q.now().ps() + dt);
            q.push(at, ());
            if do_pop {
                if let Some((t, ())) = q.pop() {
                    prop_assert!(t >= last);
                    last = t;
                }
            }
        }
        while let Some((t, ())) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Welford accumulation matches the direct two-pass computation.
    #[test]
    fn running_mean_matches_two_pass(xs in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut rm = RunningMean::new();
        for &x in &xs {
            rm.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        prop_assert!((rm.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((rm.variance() - var).abs() < 1e-3 * (1.0 + var));
    }

    /// Merging split accumulators equals accumulating the whole.
    #[test]
    fn running_mean_merge_associative(
        xs in prop::collection::vec(-1e3f64..1e3, 2..100),
        split in 1usize..99
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = RunningMean::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(split);
        let mut left = RunningMean::new();
        let mut right = RunningMean::new();
        for &x in a { left.push(x); }
        for &x in b { right.push(x); }
        left.merge(&right);
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9 * (1.0 + whole.mean().abs()));
        prop_assert_eq!(left.count(), whole.count());
    }

    /// Histogram quantiles are monotone in q and bracket the data.
    #[test]
    fn histogram_quantiles_monotone(xs in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &x in &xs {
            h.record(x);
        }
        let q25 = h.quantile(0.25);
        let q50 = h.quantile(0.50);
        let q99 = h.quantile(0.99);
        prop_assert!(q25 <= q50 && q50 <= q99);
        prop_assert_eq!(h.count(), xs.len() as u64);
    }

    /// Seed derivation is injective-ish across labels and indices (no
    /// collisions within a realistic component population).
    #[test]
    fn seed_splitter_no_small_collisions(root in any::<u64>()) {
        let s = SeedSplitter::new(root);
        let mut seen = std::collections::HashSet::new();
        for label in ["cpu", "dram", "l2", "mix", "core"] {
            for idx in 0..8u64 {
                let seed = s.split(label).split_index(idx).seed();
                prop_assert!(seen.insert(seed), "collision at {label}/{idx}");
            }
        }
    }

    /// Duration arithmetic: (a+b)-b == a and scaling distributes.
    #[test]
    fn duration_arithmetic(a in 0u64..1 << 40, b in 0u64..1 << 40, n in 1u64..16) {
        let da = Duration::from_ps(a);
        let db = Duration::from_ps(b);
        prop_assert_eq!(((da + db) - db).ps(), a);
        prop_assert_eq!(da.times(n).ps(), a * n);
        let t = SimTime::ZERO + da + db;
        prop_assert_eq!((t - da - db).ps(), 0);
    }
}
