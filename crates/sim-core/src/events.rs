//! Deterministic discrete-event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that delivers
//! events in `(time, insertion sequence)` order. The sequence tiebreak is
//! what guarantees bit-level reproducibility: two events scheduled for the
//! same instant always pop in the order they were pushed, independent of
//! heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic event queue ordered by `(time, insertion order)`.
///
/// `E` is the caller's event payload; the queue itself is payload-agnostic.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
        }
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (time zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into
    /// the past is always a model bug and must fail loudly.
    pub fn push(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lifetime (pushed, popped) counters, for conservation checks in
    /// integration tests: a finished simulation must have pushed == popped.
    pub fn counters(&self) -> (u64, u64) {
        (self.pushed, self.popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), ());
        q.push(SimTime(5), ());
        q.push(SimTime(9), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        q.pop();
        q.push(SimTime(5), ());
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        // Regression guard for the (time, seq) tiebreak under interleaving.
        let mut q = EventQueue::new();
        q.push(SimTime(10), 0);
        q.push(SimTime(10), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime(10), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn counters_balance() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.counters(), (10, 10));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
