//! Deterministic discrete-event queue.
//!
//! Two implementations share one contract — events are delivered in
//! `(time, insertion sequence)` order, which makes every simulation
//! bit-reproducible for a given seed:
//!
//! * [`EventQueue`] — the production engine: a two-level
//!   **calendar queue**. A ring of [`NUM_BUCKETS`] per-slot FIFO buckets
//!   (each [`SLOT_WIDTH_PS`] ps wide) covers the near future; events
//!   beyond that horizon sit in a far-future binary heap and migrate into
//!   the ring as the cursor approaches them. In the common case — events
//!   scheduled within ~1 µs of now, arriving in roughly increasing time
//!   order — push and pop are O(1): no sift-up/sift-down, no comparisons
//!   against unrelated events. Buckets stay `(time, seq)`-sorted via
//!   ordered insertion, so the nondecreasing-time fast path is a plain
//!   append and an out-of-order push pays only a small in-bucket insert.
//! * [`BaselineEventQueue`] — the original `BinaryHeap` engine, kept for
//!   A/B determinism checks and as the reference in the `perf_smoke`
//!   harness (`BENCH_engine.json` reports both).
//!
//! The sequence tiebreak is what guarantees reproducibility: two events
//! scheduled for the same instant always pop in the order they were
//! pushed, independent of either engine's internals.
//!
//! ## Self-tuning slot width
//!
//! The right slot width depends on the workload's event density, which
//! shifts at runtime (bursty channel traffic vs. sparse main-memory
//! stragglers). [`EventQueue::adaptive`] makes the queue classic-calendar
//! self-tuning: it tracks observed events per scanned slot with an
//! integer EWMA and moves the slot shift one power of two at a time when
//! the estimate leaves a wide hysteresis band — narrower slots when
//! clustering makes in-bucket sorted inserts expensive, wider slots when
//! the cursor burns its time scanning empty buckets. A resize
//! redistributes the near ring under the new width and leaves the far
//! heap untouched; delivery order is exactly `(time, seq)` before,
//! across, and after every resize. [`EventQueue::with_slot_shift`] pins
//! the knob and disables adaptation entirely.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::time::SimTime;

/// Default log2 of the calendar-slot width in picoseconds (1024 ps ≈
/// 1 ns, i.e. about four CPU cycles — finer than every DRAM timing
/// parameter). Tunable per queue via [`EventQueue::with_slot_shift`]:
/// smaller shifts spread clustered events over more buckets (cheaper
/// in-bucket inserts, longer empty-slot scans), larger shifts shorten
/// the scan but push more ties into one bucket.
pub const SLOT_SHIFT: u32 = 10;

/// Width of one calendar slot in picoseconds at the default shift.
pub const SLOT_WIDTH_PS: u64 = 1 << SLOT_SHIFT;

/// Largest accepted slot shift (a 1-second-wide slot; beyond this the
/// ring degenerates to a single bucket for any realistic horizon).
pub const MAX_SLOT_SHIFT: u32 = 40;

/// Number of slots in the near-future ring (must be a power of two).
/// `NUM_BUCKETS << SLOT_SHIFT` ps ≈ 1.05 µs of horizon — comfortably
/// past every single-hop latency in the model (the longest, a main-memory
/// read under load, is ~hundreds of ns).
pub const NUM_BUCKETS: usize = 1024;

const BUCKET_MASK: u64 = NUM_BUCKETS as u64 - 1;

/// Pops per adaptation sample. Density is measured over windows of this
/// many deliveries, so adaptation cost is O(1) amortised and a queue
/// that never reaches steady state (short runs) never resizes.
const ADAPT_SAMPLE_POPS: u64 = 1024;

/// Fixed-point scale for the density EWMA (Q8: 256 == 1.0 event/slot).
const ADAPT_Q8: u64 = 256;

/// Upper hysteresis bound: above ~4 events per scanned slot the bucket
/// inserts dominate — halve the slot width. The band spans 16x
/// ([`ADAPT_LO_Q8`]..[`ADAPT_HI_Q8`]) while one shift step moves density
/// by only 2x, so a resize can never oscillate on a stable workload.
const ADAPT_HI_Q8: u64 = 4 * ADAPT_Q8;

/// Lower hysteresis bound: below ~1/4 event per scanned slot the
/// empty-bucket scan dominates — double the slot width.
const ADAPT_LO_Q8: u64 = ADAPT_Q8 / 4;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// One near-future slot: events whose timestamps all fall in the same
/// `SLOT_WIDTH_PS`-wide window, kept ascending in `(time, seq)` at all
/// times. Pushes in nondecreasing time order — the overwhelmingly common
/// case — are a plain O(1) append; a genuinely out-of-order push pays a
/// binary search plus an O(k) insert into the (small) bucket, keeping
/// every pop a straight `pop_front`.
struct Bucket<E> {
    items: VecDeque<(SimTime, u64, E)>,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket {
            items: VecDeque::new(),
        }
    }
}

impl<E> Bucket<E> {
    /// Insert preserving `(time, seq)` order. Pushes compare on the full
    /// `(time, seq)` key: a freshly pushed event always has the largest
    /// seq, but a *migrated* far-heap event can tie on time with an
    /// already-bucketed later-seq event and must land in front of it.
    #[inline]
    fn insert(&mut self, time: SimTime, seq: u64, event: E) {
        match self.items.back() {
            Some(back) if (back.0, back.1) > (time, seq) => {
                // Out-of-order for this bucket: binary-search the spot.
                // Seq order makes the key strictly increasing, so
                // partition_point on (time, seq) is exact.
                let pos = self.items.partition_point(|e| (e.0, e.1) < (time, seq));
                self.items.insert(pos, (time, seq, event));
            }
            _ => self.items.push_back((time, seq, event)),
        }
    }
}

/// A deterministic event queue ordered by `(time, insertion order)`,
/// backed by a two-level calendar queue.
///
/// `E` is the caller's event payload; the queue itself is payload-agnostic.
pub struct EventQueue<E> {
    /// Near-future ring; bucket `s & BUCKET_MASK` holds slot `s` events.
    buckets: Vec<Bucket<E>>,
    /// Events in the ring.
    near_len: usize,
    /// Cursor: the slot the next delivery scan starts from. Only ever
    /// advances, and never past the earliest pending event's slot.
    base_slot: u64,
    /// Events at or beyond `base_slot + NUM_BUCKETS` at push time.
    far: BinaryHeap<Entry<E>>,
    /// log2 of this queue's slot width in picoseconds.
    slot_shift: u32,
    /// Self-tune the slot shift from observed density ([`Self::adaptive`]).
    adaptive: bool,
    /// EWMA of events per scanned slot, Q8 fixed point (256 == 1.0).
    density_q8: u64,
    /// Pops since the current adaptation sample began.
    sample_pops: u64,
    /// Empty slots the cursor scanned past in the current sample.
    sample_slots: u64,
    /// Lifetime count of adaptive resizes (observability for tests/benches).
    resizes: u64,
    next_seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at time zero and the default
    /// [`SLOT_SHIFT`] bucket width.
    pub fn new() -> Self {
        Self::with_slot_shift(SLOT_SHIFT)
    }

    /// An empty queue whose calendar slots are `1 << slot_shift` ps wide,
    /// with the width **pinned**: runtime adaptation is off.
    ///
    /// Delivery order is identical for every shift — only the constant
    /// factors move. The `event_clustered_*` / `event_rolling_window_*`
    /// microbenches bracket the two failure modes: too-wide slots force
    /// sorted in-bucket inserts under event clustering, too-narrow slots
    /// lengthen the empty-bucket scan between sparse events.
    ///
    /// # Panics
    /// Panics if `slot_shift` exceeds [`MAX_SLOT_SHIFT`].
    pub fn with_slot_shift(slot_shift: u32) -> Self {
        assert!(
            slot_shift <= MAX_SLOT_SHIFT,
            "slot_shift {slot_shift} exceeds MAX_SLOT_SHIFT {MAX_SLOT_SHIFT}"
        );
        EventQueue {
            buckets: (0..NUM_BUCKETS).map(|_| Bucket::default()).collect(),
            near_len: 0,
            base_slot: 0,
            far: BinaryHeap::new(),
            slot_shift,
            adaptive: false,
            density_q8: ADAPT_Q8,
            sample_pops: 0,
            sample_slots: 0,
            resizes: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
        }
    }

    /// An empty **self-tuning** queue: starts at the default
    /// [`SLOT_SHIFT`] and thereafter resizes the ring (slot shift one
    /// power of two at a time, within `[0, MAX_SLOT_SHIFT]`) whenever the
    /// per-sample density EWMA leaves the hysteresis band. Resizing is a
    /// pure performance move — the `(time, seq)` delivery contract is
    /// identical to the pinned and heap engines, which the property tests
    /// enforce under forced resizes.
    pub fn adaptive() -> Self {
        Self::adaptive_from(SLOT_SHIFT)
    }

    /// A self-tuning queue starting from a caller-chosen slot shift —
    /// the adaptive analogue of [`EventQueue::with_slot_shift`].
    ///
    /// # Panics
    /// Panics if `slot_shift` exceeds [`MAX_SLOT_SHIFT`].
    pub fn adaptive_from(slot_shift: u32) -> Self {
        let mut q = Self::with_slot_shift(slot_shift);
        q.adaptive = true;
        q
    }

    /// This queue's slot-width exponent (current value: an adaptive
    /// queue moves it at runtime).
    pub fn slot_shift(&self) -> u32 {
        self.slot_shift
    }

    /// Whether runtime slot-width adaptation is enabled.
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// How many adaptive resizes have happened so far.
    pub fn resizes(&self) -> u64 {
        self.resizes
    }

    #[inline]
    fn slot_of(&self, t: SimTime) -> u64 {
        t.ps() >> self.slot_shift
    }

    /// Current simulated time: the timestamp of the last popped event
    /// (time zero before the first pop).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time — scheduling into
    /// the past is always a model bug and must fail loudly.
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.insert_entry(at, seq, event);
    }

    /// Schedule `event` at `at` with a caller-supplied tiebreak key in
    /// place of the auto-assigned insertion sequence: delivery order is
    /// `(time, key)`. This is the hook the shard engines use to impose a
    /// *content-derived* order — e.g. `(sender shard, sender seq)` packed
    /// into one u64 — so that the merge of racy cross-shard arrivals is
    /// deterministic regardless of wall-clock interleaving.
    ///
    /// Keys must be unique per `(time, key)` pair. Mixing with [`push`]
    /// on one queue is supported: the auto sequence jumps past every
    /// explicit key it has seen, so auto-keyed events never collide with
    /// earlier explicit ones.
    ///
    /// [`push`]: EventQueue::push
    pub fn push_keyed(&mut self, at: SimTime, key: u64, event: E) {
        self.next_seq = self.next_seq.max(key.saturating_add(1));
        self.insert_entry(at, key, event);
    }

    /// Shared insertion path.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current time.
    fn insert_entry(&mut self, at: SimTime, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        self.pushed += 1;
        let slot = self.slot_of(at);
        debug_assert!(slot >= self.base_slot);
        if slot < self.base_slot + NUM_BUCKETS as u64 {
            self.buckets[(slot & BUCKET_MASK) as usize].insert(at, seq, event);
            self.near_len += 1;
        } else {
            self.far.push(Entry {
                time: at,
                seq,
                event,
            });
        }
    }

    /// Move far-future events whose slot now falls inside the ring window
    /// into their buckets. Called with the cursor parked at `base_slot`;
    /// afterwards every far event is strictly beyond the window, so the
    /// earliest pending event is always in the ring.
    fn migrate_far(&mut self) {
        let window_end = self.base_slot + NUM_BUCKETS as u64;
        while let Some(head) = self.far.peek() {
            if self.slot_of(head.time) >= window_end {
                break;
            }
            let Entry { time, seq, event } = self.far.pop().expect("peeked entry");
            // The bucket may already hold later-pushed near events with
            // larger seq but possibly later/earlier times; ordered insert
            // handles both.
            let slot = self.slot_of(time);
            self.buckets[(slot & BUCKET_MASK) as usize].insert(time, seq, event);
            self.near_len += 1;
        }
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.near_len == 0 {
            // Ring empty: jump the cursor straight to the far heap's
            // earliest slot (cursor moves forward only — far events are
            // never earlier than `now`).
            let head_slot = self.slot_of(self.far.peek()?.time);
            debug_assert!(head_slot >= self.base_slot);
            self.base_slot = head_slot;
        }
        self.migrate_far();
        debug_assert!(self.near_len > 0);
        // Scan forward to the next non-empty slot. Each bucket holds
        // exactly one slot's events (window size == ring size), so the
        // first hit is the earliest slot; the cursor's monotonic advance
        // amortises the scan to O(1) per pop.
        let scan_from = self.base_slot;
        loop {
            let bucket = &mut self.buckets[(self.base_slot & BUCKET_MASK) as usize];
            if bucket.items.is_empty() {
                self.base_slot += 1;
                continue;
            }
            let (time, _seq, event) = bucket.items.pop_front().expect("non-empty bucket");
            self.near_len -= 1;
            debug_assert!(time >= self.now, "time went backwards");
            self.now = time;
            self.popped += 1;
            if self.adaptive {
                self.sample_pops += 1;
                self.sample_slots += self.base_slot - scan_from;
                if self.sample_pops >= ADAPT_SAMPLE_POPS {
                    self.adapt();
                }
            }
            return Some((time, event));
        }
    }

    /// Close an adaptation sample: fold its density into the EWMA and
    /// resize one power-of-two step if the estimate left the band.
    fn adapt(&mut self) {
        // Events delivered per slot of cursor advance. A fully clustered
        // sample (everything in the cursor's slot) advances zero slots
        // and reads as maximal density via the `.max(1)` floor.
        let density = (self.sample_pops << 8) / self.sample_slots.max(1);
        // EWMA, alpha = 1/4: cheap, integer, and slow enough that one
        // anomalous sample cannot trigger a resize by itself.
        self.density_q8 = self.density_q8 - self.density_q8 / 4 + density / 4;
        self.sample_pops = 0;
        self.sample_slots = 0;
        if self.density_q8 > ADAPT_HI_Q8 && self.slot_shift > 0 {
            self.resize(self.slot_shift - 1);
            // Halving the width halves expected density; pre-scale the
            // estimate so the band check reflects the new geometry.
            self.density_q8 /= 2;
        } else if self.density_q8 < ADAPT_LO_Q8 && self.slot_shift < MAX_SLOT_SHIFT {
            self.resize(self.slot_shift + 1);
            self.density_q8 *= 2;
        }
    }

    /// Re-bucket the near ring under a new slot width. Order is
    /// preserved because redistribution only re-*addresses* entries: the
    /// `(time, seq)` keys are untouched, every bucket re-inserts in
    /// ascending key order (so each insert is the fast append), and
    /// entries whose slot left the shrunken window fall back to the far
    /// heap, from which `migrate_far` re-delivers them by the same keys.
    fn resize(&mut self, new_shift: u32) {
        debug_assert!(new_shift <= MAX_SLOT_SHIFT);
        let mut scratch: Vec<(SimTime, u64, E)> = Vec::with_capacity(self.near_len);
        for bucket in &mut self.buckets {
            scratch.extend(bucket.items.drain(..));
        }
        // Unique (time, seq) keys: unstable sort is deterministic here.
        scratch.sort_unstable_by_key(|e| (e.0, e.1));
        self.slot_shift = new_shift;
        self.base_slot = self.now.ps() >> new_shift;
        self.near_len = 0;
        self.resizes += 1;
        let window_end = self.base_slot + NUM_BUCKETS as u64;
        for (time, seq, event) in scratch {
            let slot = time.ps() >> new_shift;
            debug_assert!(slot >= self.base_slot, "pending event before now");
            if slot < window_end {
                self.buckets[(slot & BUCKET_MASK) as usize].insert(time, seq, event);
                self.near_len += 1;
            } else {
                self.far.push(Entry { time, seq, event });
            }
        }
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_key().map(|(t, _)| t)
    }

    /// `(time, tiebreak key)` of the next event without popping it — the
    /// full delivery key, so a multi-queue merge can order heads that tie
    /// on timestamp exactly as a single queue would.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        // Pushes since the last pop may have landed on either side of the
        // (stale) window split, so take the min across both levels.
        let far_min = self.far.peek().map(|e| (e.time, e.seq));
        if self.near_len == 0 {
            return far_min;
        }
        let mut slot = self.base_slot;
        let near_min = loop {
            // Buckets stay sorted, so the front is the bucket minimum;
            // the first non-empty bucket holds the earliest slot, so its
            // front is the exact near-level minimum by (time, seq).
            if let Some(front) = self.buckets[(slot & BUCKET_MASK) as usize].items.front() {
                break (front.0, front.1);
            }
            slot += 1;
        };
        Some(match far_min {
            Some(f) => near_min.min(f),
            None => near_min,
        })
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.near_len + self.far.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime (pushed, popped) counters, for conservation checks in
    /// integration tests: a finished simulation must have pushed == popped.
    pub fn counters(&self) -> (u64, u64) {
        (self.pushed, self.popped)
    }
}

/// The original `BinaryHeap`-backed engine. Same API and identical
/// `(time, seq)` delivery order as [`EventQueue`]; kept so determinism
/// tests can assert the calendar engine reproduces it bit-for-bit and so
/// the perf harness has a fixed reference point.
pub struct BaselineEventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
    pushed: u64,
    popped: u64,
}

impl<E> Default for BaselineEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> BaselineEventQueue<E> {
    /// An empty queue with the clock at time zero.
    pub fn new() -> Self {
        BaselineEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
            pushed: 0,
            popped: 0,
        }
    }

    /// Current simulated time (see [`EventQueue::now`]).
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at` (see [`EventQueue::push`]).
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_entry(at, seq, event);
    }

    /// Caller-keyed push (see [`EventQueue::push_keyed`]) — the heap
    /// oracle for keyed delivery order.
    pub fn push_keyed(&mut self, at: SimTime, key: u64, event: E) {
        self.next_seq = self.next_seq.max(key.saturating_add(1));
        self.push_entry(at, key, event);
    }

    fn push_entry(&mut self, at: SimTime, seq: u64, event: E) {
        assert!(
            at >= self.now,
            "event scheduled in the past: at={at:?} now={:?}",
            self.now
        );
        self.pushed += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "time went backwards");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// `(time, tiebreak key)` of the next event without popping it.
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Lifetime (pushed, popped) counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.pushed, self.popped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        assert_eq!(q.pop().unwrap(), (SimTime(10), "a"));
        assert_eq!(q.pop().unwrap(), (SimTime(20), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(30), "c"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(42), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), ());
        q.push(SimTime(5), ());
        q.push(SimTime(9), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
            assert_eq!(q.now(), t);
        }
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), ());
        q.pop();
        q.push(SimTime(5), ());
    }

    #[test]
    fn interleaved_push_pop_is_deterministic() {
        // Regression guard for the (time, seq) tiebreak under interleaving.
        let mut q = EventQueue::new();
        q.push(SimTime(10), 0);
        q.push(SimTime(10), 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(SimTime(10), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }

    #[test]
    fn counters_balance() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(SimTime(i), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.counters(), (10, 10));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), ());
        assert_eq!(q.peek_time(), Some(SimTime(7)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    // ------------------------------------------------------------------
    // Calendar-queue specific coverage: the far-future heap, migration
    // into the ring, ring wrap-around, and cross-engine equivalence.
    // ------------------------------------------------------------------

    /// Window span in picoseconds (events past this go to the far heap).
    const WINDOW_PS: u64 = (NUM_BUCKETS as u64) << SLOT_SHIFT;

    #[test]
    fn far_future_events_delivered_in_order() {
        let mut q = EventQueue::new();
        // Straddle the horizon: near, just-inside, just-outside, way out.
        q.push(SimTime(3 * WINDOW_PS), "far2");
        q.push(SimTime(100), "near");
        q.push(SimTime(WINDOW_PS - 1), "edge-in");
        q.push(SimTime(WINDOW_PS + 1), "far1");
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop().unwrap().1, "edge-in");
        assert_eq!(q.pop().unwrap().1, "far1");
        assert_eq!(q.pop().unwrap().1, "far2");
        assert!(q.pop().is_none());
        assert_eq!(q.counters(), (4, 4));
    }

    #[test]
    fn far_ties_keep_insertion_order_after_migration() {
        let mut q = EventQueue::new();
        let t = SimTime(2 * WINDOW_PS + 5);
        for i in 0..50 {
            q.push(t, i);
        }
        for i in 0..50 {
            assert_eq!(q.pop().unwrap(), (t, i));
        }
    }

    #[test]
    fn ring_wraps_across_many_windows() {
        let mut q = EventQueue::new();
        // March time across several full ring revolutions with a rolling
        // lookahead that keeps both levels populated.
        let mut expect = 0u64;
        for i in 0..10_000u64 {
            q.push(SimTime(i * 700), i); // ~6.7 windows total
        }
        while let Some((_, i)) = q.pop() {
            assert_eq!(i, expect);
            expect += 1;
            // Occasionally push a same-time event mid-drain; it must come
            // out before later-timed ones (freshly-pushed, so after any
            // not-yet-popped equal-time event — none here).
        }
        assert_eq!(expect, 10_000);
    }

    #[test]
    fn out_of_order_pushes_within_one_bucket_sort_lazily() {
        let mut q = EventQueue::new();
        // Same slot (width 1024 ps), descending times: dirties the bucket.
        q.push(SimTime(900), "c");
        q.push(SimTime(500), "b");
        q.push(SimTime(100), "a");
        assert_eq!(q.peek_time(), Some(SimTime(100)));
        assert_eq!(q.pop().unwrap(), (SimTime(100), "a"));
        // Push into the same, partially drained bucket.
        q.push(SimTime(300), "a2");
        assert_eq!(q.pop().unwrap(), (SimTime(300), "a2"));
        assert_eq!(q.pop().unwrap(), (SimTime(500), "b"));
        assert_eq!(q.pop().unwrap(), (SimTime(900), "c"));
    }

    #[test]
    fn peek_sees_far_future_minimum() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.push(SimTime(5 * WINDOW_PS), ());
        assert_eq!(q.peek_time(), Some(SimTime(5 * WINDOW_PS)));
        q.push(SimTime(10), ());
        assert_eq!(q.peek_time(), Some(SimTime(10)));
    }

    #[test]
    fn migrated_far_event_ties_sort_before_later_near_pushes() {
        // Regression: a far-heap event that ties on timestamp with an
        // already-bucketed later-seq event must migrate *in front* of
        // it. Sequence: park a far event beyond the window, advance the
        // cursor until its slot is in-window but still unmigrated, push
        // a near event at the exact same time, then pop through.
        let far_time = SimTime(1030 << SLOT_SHIFT); // slot 1030, outside [0, 1024)
        let mut q = EventQueue::new();
        q.push(far_time, "far-first"); // seq 0 → far heap
        q.push(SimTime(500 << SLOT_SHIFT), "early"); // seq 1 → bucket 500
        assert_eq!(q.pop().unwrap().1, "early"); // cursor → slot 500; window now covers 1030
        q.push(far_time, "near-second"); // seq 2 → straight into bucket 1030
        assert_eq!(
            q.pop().unwrap().1,
            "far-first",
            "seq order must survive migration"
        );
        assert_eq!(q.pop().unwrap().1, "near-second");
        assert!(q.pop().is_none());
    }

    #[test]
    fn slot_shift_does_not_change_delivery_order() {
        // The bucket width is a pure performance knob: any shift must
        // deliver the exact same (time, seq) sequence. Exercise extreme
        // widths (1 ps slots and 1 µs slots) against the default.
        let mut queues = [
            EventQueue::with_slot_shift(0),
            EventQueue::with_slot_shift(SLOT_SHIFT),
            EventQueue::with_slot_shift(20),
        ];
        let mut state = 0xFEED_FACE_CAFE_F00D_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut tag = 0u64;
        for _ in 0..5_000 {
            let r = next();
            if r % 4 != 0 {
                let dt = r % (3 * WINDOW_PS / 2); // spans near ring and far heap
                let at = SimTime(queues[0].now().ps() + dt);
                for q in &mut queues {
                    q.push(at, tag);
                }
                tag += 1;
            } else {
                let expect = queues[0].pop();
                for q in &mut queues[1..] {
                    assert_eq!(q.pop(), expect);
                }
            }
        }
        loop {
            let expect = queues[0].pop();
            for q in &mut queues[1..] {
                assert_eq!(q.pop(), expect);
            }
            if expect.is_none() {
                break;
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_SLOT_SHIFT")]
    fn oversized_slot_shift_panics() {
        let _q: EventQueue<()> = EventQueue::with_slot_shift(MAX_SLOT_SHIFT + 1);
    }

    // ------------------------------------------------------------------
    // Adaptive (self-tuning) slot width.
    // ------------------------------------------------------------------

    #[test]
    fn pinned_queue_never_resizes() {
        let mut q = EventQueue::with_slot_shift(SLOT_SHIFT);
        assert!(!q.is_adaptive());
        for i in 0..20_000u64 {
            q.push(SimTime(i * 3), i);
        }
        while q.pop().is_some() {}
        assert_eq!(q.resizes(), 0);
        assert_eq!(q.slot_shift(), SLOT_SHIFT);
    }

    #[test]
    fn adaptive_narrows_under_clustering() {
        // Everything lands in a handful of slots: density far above the
        // band, so the queue must shrink its slot width.
        let mut q = EventQueue::adaptive();
        let mut t = 0u64;
        for i in 0..20_000u64 {
            // 64 events per kilo-slot burst, bursts 8 slots apart.
            if i % 64 == 0 {
                t += 8 << SLOT_SHIFT;
            }
            q.push(SimTime(t + (i % 64)), i);
        }
        let mut expect = 0u64;
        // Rolling drain keeps the ring populated while time advances.
        while let Some((_, i)) = q.pop() {
            assert_eq!(i, expect, "resize broke delivery order");
            expect += 1;
        }
        assert!(q.resizes() > 0, "clustered load must trigger a resize");
        assert!(
            q.slot_shift() < SLOT_SHIFT,
            "clustering must narrow slots, got shift {}",
            q.slot_shift()
        );
    }

    #[test]
    fn adaptive_widens_under_sparse_load() {
        // ~1 event per 64 slots: the cursor scans mostly empty buckets,
        // so the queue must widen its slots.
        let mut q = EventQueue::adaptive();
        for i in 0..20_000u64 {
            q.push(SimTime(i * (64 << SLOT_SHIFT)), i);
        }
        let mut expect = 0u64;
        while let Some((_, i)) = q.pop() {
            assert_eq!(i, expect);
            expect += 1;
        }
        assert!(q.resizes() > 0, "sparse load must trigger a resize");
        assert!(
            q.slot_shift() > SLOT_SHIFT,
            "sparse load must widen slots, got shift {}",
            q.slot_shift()
        );
    }

    #[test]
    fn adaptive_matches_baseline_through_phase_changes() {
        // Alternating clustered and sparse phases force resizes in both
        // directions mid-stream; every delivery must still match the
        // heap oracle exactly, including interleaved pops.
        let mut ad = EventQueue::adaptive();
        let mut base = BaselineEventQueue::new();
        let mut state = 0x9E37_79B9_7F4A_7C15_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut tag = 0u64;
        for round in 0..12 {
            let clustered = round % 2 == 0;
            for _ in 0..6_000 {
                let r = next();
                if r % 4 != 0 {
                    let dt = if clustered {
                        r % 32 // piles ties into a few slots
                    } else {
                        (r % 64) * (64 << SLOT_SHIFT) // sparse far spread
                    };
                    let at = SimTime(ad.now().ps() + dt);
                    ad.push(at, tag);
                    base.push(at, tag);
                    tag += 1;
                } else {
                    assert_eq!(ad.pop(), base.pop());
                    assert_eq!(ad.now(), base.now());
                }
            }
        }
        loop {
            let (a, b) = (ad.pop(), base.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(ad.resizes() >= 2, "phases must force resizes both ways");
        assert_eq!(ad.counters(), base.counters());
    }

    #[test]
    fn keyed_pushes_order_by_key_not_arrival() {
        // Two "senders" interleave arbitrarily; delivery must follow the
        // content key, not arrival order — on both engines.
        let mut cal: EventQueue<u64> = EventQueue::new();
        let mut heap: BaselineEventQueue<u64> = BaselineEventQueue::new();
        let t = SimTime(500);
        for q in [3u64, 1, 4, 0, 2] {
            cal.push_keyed(t, q, q);
            heap.push_keyed(t, q, q);
        }
        assert_eq!(cal.peek_key(), Some((t, 0)));
        assert_eq!(heap.peek_key(), Some((t, 0)));
        for want in 0..5u64 {
            assert_eq!(cal.pop(), Some((t, want)));
            assert_eq!(heap.pop(), Some((t, want)));
        }
        // Auto-keyed pushes after explicit keys stay collision-free.
        cal.push(t, 99);
        heap.push(t, 99);
        assert_eq!(cal.pop(), Some((t, 99)));
        assert_eq!(heap.pop(), Some((t, 99)));
    }

    #[test]
    fn peek_key_agrees_across_levels() {
        let mut q: EventQueue<&str> = EventQueue::new();
        q.push(SimTime(2 * WINDOW_PS), "far"); // key 0, far heap
        q.push(SimTime(10), "near"); // key 1, ring
        assert_eq!(q.peek_key(), Some((SimTime(10), 1)));
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.peek_key(), Some((SimTime(2 * WINDOW_PS), 0)));
    }

    #[test]
    fn matches_baseline_engine_on_adversarial_interleaving() {
        // Deterministic pseudo-random push/pop schedule, replayed through
        // both engines; every delivery must match exactly.
        let mut cal = EventQueue::new();
        let mut base = BaselineEventQueue::new();
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut tag = 0u64;
        for _ in 0..20_000 {
            let r = next();
            if r % 3 != 0 {
                // Push: mixture of near (same slot), mid, and far-future.
                let dt = match r % 5 {
                    0 => r % 64,                    // same/adjacent slot
                    1 => r % (WINDOW_PS / 2),       // mid window
                    2 => WINDOW_PS + r % WINDOW_PS, // far heap
                    _ => r % 4096,                  // near
                };
                let at = SimTime(cal.now().ps() + dt);
                cal.push(at, tag);
                base.push(at, tag);
                tag += 1;
            } else {
                assert_eq!(cal.pop(), base.pop());
                assert_eq!(cal.now(), base.now());
            }
            assert_eq!(cal.len(), base.len());
        }
        loop {
            let (a, b) = (cal.pop(), base.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cal.counters(), base.counters());
    }
}
