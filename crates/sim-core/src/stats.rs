//! Statistics primitives.
//!
//! The device and controller models record raw counts; the figure harness
//! converts them into the paper's metrics. Everything here is plain data —
//! no interior mutability, no floating-point accumulation surprises (means
//! use the numerically stable Welford update).

use std::fmt;

/// A simple saturating event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 = self.0.saturating_add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 = self.0.saturating_add(n);
    }

    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Running mean / variance via Welford's algorithm, plus min/max.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningMean {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMean {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningMean {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample in.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 with < 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merge another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &RunningMean) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A histogram over power-of-two buckets, for latency distributions.
///
/// Bucket `i` covers `[2^i, 2^(i+1))` except bucket 0 which covers `[0, 2)`.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: Vec<u64>,
    total: u64,
    sum: u128,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram with 64 log2 buckets.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; 64],
            total: 0,
            sum: 0,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = if value < 2 {
            0
        } else {
            63 - value.leading_zeros() as usize
        };
        let idx = idx.min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Approximate quantile: returns the *upper bound* of the bucket that
    /// contains the q-th sample (q in [0,1]). Log2 buckets make this a
    /// within-2x estimate, which is plenty for latency tail reporting.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let target = ((self.total as f64) * q.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return 1u64 << (i + 1).min(63);
            }
        }
        u64::MAX
    }

    /// Per-bucket counts, for tests and debugging dumps.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::default();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(format!("{c}"), "5");
    }

    #[test]
    fn counter_saturates() {
        let mut c = Counter(u64::MAX - 1);
        c.add(10);
        assert_eq!(c.get(), u64::MAX);
    }

    #[test]
    fn running_mean_matches_direct_computation() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut rm = RunningMean::new();
        for &x in &xs {
            rm.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((rm.mean() - mean).abs() < 1e-12);
        assert!((rm.variance() - var).abs() < 1e-12);
        assert_eq!(rm.min(), 1.0);
        assert_eq!(rm.max(), 9.0);
        assert_eq!(rm.count(), 8);
    }

    #[test]
    fn running_mean_merge_equals_sequential() {
        let xs: Vec<f64> = (0..57).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningMean::new();
        for &x in &xs {
            whole.push(x);
        }
        let (a, b) = xs.split_at(23);
        let mut left = RunningMean::new();
        let mut right = RunningMean::new();
        for &x in a {
            left.push(x);
        }
        for &x in b {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
    }

    #[test]
    fn empty_running_mean_is_safe() {
        let rm = RunningMean::new();
        assert_eq!(rm.mean(), 0.0);
        assert_eq!(rm.variance(), 0.0);
        assert!(rm.min().is_nan());
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 2); // 0 and 1
        assert_eq!(h.buckets()[1], 2); // 2 and 3
        assert_eq!(h.buckets()[10], 1); // 1024
        assert!((h.mean() - 206.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_is_monotone() {
        let mut h = Histogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let q50 = h.quantile(0.5);
        let q90 = h.quantile(0.9);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q90 && q90 <= q99);
        assert!(
            (256..=1024).contains(&q50),
            "median of 0..1000 ~512, got {q50}"
        );
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 252.5).abs() < 1e-9);
    }
}
