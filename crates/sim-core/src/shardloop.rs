//! Conservative-time-synchronization sharded event loop.
//!
//! A parallel discrete-event engine (`std::thread` only) for models whose
//! event traffic partitions into **static domains** — in this workspace:
//! one domain per DRAM-cache channel, one for the main-memory device, one
//! for the CPU/uncore front-end. Each shard owns the calendar queues of
//! its domains and runs them on its own thread; shards exchange events
//! through bounded SPSC rings and synchronize with a barrier-free
//! safe-time protocol.
//!
//! # The protocol
//!
//! The engine is a classic conservative (Chandy–Misra–Bryant-style)
//! scheme built on a **lookahead window** `L`: a cross-*domain* send
//! scheduled while processing an event at time `t` must carry a
//! timestamp `≥ t + L`. In the DCA system model, `L` is derived from the
//! minimum cross-domain latency — an off-chip bus transfer plus the
//! tag-access floor — because no channel, memory, or front-end handler
//! can affect another domain sooner than that.
//!
//! Each shard `s` publishes a monotone **safe time** `bound_s`: a lower
//! bound on the timestamp of any event it may still send. With `head_s`
//! the earliest pending local event and `snap_s` the minimum of the peer
//! bounds `s` last read,
//!
//! ```text
//! bound_s = min(head_s, snap_s) + L
//! ```
//!
//! (`snap_s` covers in-flight ring messages: a message still undrained
//! when `s` snapshots its peers is timestamped at or above the bound the
//! sender had published when it sent — reading a peer's bound with
//! `Acquire` ordering after the peer's `Release` publish also makes the
//! preceding ring pushes visible, so everything below the snapshot is
//! already drained.) A shard may process its head event at time `t`
//! only while `t <` the minimum peer bound it snapshotted. Positive
//! lookahead makes the scheme deadlock-free: every published bound is
//! at least `t* + L` where `t*` is the globally earliest unprocessed
//! event, so the shard holding `t*` can always run.
//!
//! # Determinism
//!
//! Wall-clock arrival order of ring messages is racy, so delivery order
//! cannot lean on insertion sequence. Every event instead carries a
//! **content-derived key** — `(per-domain send sequence, source domain)`
//! packed into a u64 — and queues deliver by `(time, key)` via
//! [`EventQueue::push_keyed`]. Because the safe-time rule admits time
//! `t` only after every event with timestamp `≤ t` has been drained,
//! each shard's processing order is exactly ascending `(time, key)`:
//! independent of thread count, scheduling, and ring timing. The
//! property tests pin sequential vs 1/2/4-thread runs to identical
//! final states.
//!
//! This module is on the linter's R01 list: it must not panic on
//! cross-thread paths — protocol violations (lookahead too small,
//! scheduling into the past, unknown domains) surface as
//! [`ShardError`]s through a shared stop flag instead.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::events::EventQueue;
use crate::time::{Duration, SimTime};

/// A static partition index: events are tagged with the domain whose
/// state they touch, and domains are assigned to shards round-robin.
pub type Domain = u16;

/// Source tag reserved for initial (pre-run) events in the merge key.
const INIT_SRC: u64 = 0xFFFF;

/// Bits of the merge key holding the source domain.
const SRC_BITS: u32 = 16;

/// Pack a `(per-domain send seq, source domain)` pair into the delivery
/// tiebreak key. Both halves are thread-count-invariant, so the total
/// `(time, key)` order — and therefore every result — is too.
#[inline]
fn merge_key(seq: u64, src: u64) -> u64 {
    (seq << SRC_BITS) | src
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardConfig {
    /// Worker threads (= shards). Clamped to the domain count at run
    /// time; `1` degenerates to a single-threaded loop with no rings.
    pub threads: usize,
    /// The lookahead window: minimum latency of any cross-domain
    /// interaction. Must be positive — zero lookahead admits no safe
    /// parallel window at all.
    pub lookahead: Duration,
    /// Capacity of each SPSC ring (power of two).
    pub ring_capacity: usize,
}

impl ShardConfig {
    /// A config with the default ring capacity.
    pub fn new(threads: usize, lookahead: Duration) -> Self {
        ShardConfig {
            threads,
            lookahead,
            ring_capacity: 4096,
        }
    }
}

/// Why a sharded run could not start or finish.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardError {
    /// The model declared no domains.
    NoDomains,
    /// More domains than the merge key can address.
    TooManyDomains(usize),
    /// `threads == 0`.
    ZeroThreads,
    /// Lookahead must be positive for conservative sync to make progress.
    ZeroLookahead,
    /// Ring capacity must be a power of two of at least 2.
    BadRingCapacity(usize),
    /// A handler sent to a domain the model never declared.
    UnknownDomain(Domain),
    /// A send was scheduled before the event that produced it.
    PastSend { now: SimTime, at: SimTime },
    /// A cross-domain send violated the declared lookahead window.
    LookaheadViolation {
        now: SimTime,
        at: SimTime,
        lookahead: Duration,
    },
    /// A worker thread died without completing its shard.
    WorkerFailed,
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoDomains => write!(f, "shardloop: no domains declared"),
            ShardError::TooManyDomains(n) => {
                write!(f, "shardloop: {n} domains exceed the 65535 key space")
            }
            ShardError::ZeroThreads => write!(f, "shardloop: thread count must be >= 1"),
            ShardError::ZeroLookahead => {
                write!(f, "shardloop: lookahead must be positive")
            }
            ShardError::BadRingCapacity(c) => {
                write!(f, "shardloop: ring capacity {c} is not a power of two >= 2")
            }
            ShardError::UnknownDomain(d) => write!(f, "shardloop: send to unknown domain {d}"),
            ShardError::PastSend { now, at } => {
                write!(f, "shardloop: send at {at:?} is before now {now:?}")
            }
            ShardError::LookaheadViolation { now, at, lookahead } => write!(
                f,
                "shardloop: cross-domain send at {at:?} from {now:?} undercuts lookahead {lookahead:?}"
            ),
            ShardError::WorkerFailed => write!(f, "shardloop: a worker thread failed"),
        }
    }
}

/// Sends a handler wants to make; flushed — and validated — by the
/// engine after the handler returns.
pub struct Outbox<E> {
    msgs: Vec<(Domain, SimTime, E)>,
}

impl<E> Outbox<E> {
    /// Schedule `event` for `dst` at absolute time `at`. Sends to the
    /// current domain may be at any `at >= now`; sends to any other
    /// domain must respect the lookahead window (`at >= now + L`).
    pub fn send(&mut self, dst: Domain, at: SimTime, event: E) {
        self.msgs.push((dst, at, event));
    }
}

/// One cross-shard message.
struct Msg<E> {
    dst: Domain,
    at: SimTime,
    key: u64,
    event: E,
}

/// Pad to a cache line so the producer and consumer cursors of a ring
/// never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

/// A bounded single-producer single-consumer ring (Lamport queue).
/// Producer/consumer roles are fixed by construction: ring `(i, j)` is
/// pushed only by shard `i`'s thread and popped only by shard `j`'s.
struct SpscRing<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer reads.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer writes.
    tail: CachePadded<AtomicUsize>,
}

// Safety: the protocol is the standard SPSC contract — `try_push` is
// called by exactly one thread and `try_pop` by exactly one other; the
// Release store of each cursor publishes the slot contents the opposite
// side then reads under Acquire.
unsafe impl<T: Send> Sync for SpscRing<T> {}
unsafe impl<T: Send> Send for SpscRing<T> {}

impl<T> SpscRing<T> {
    fn with_capacity(cap: usize) -> Self {
        let buf = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        SpscRing {
            buf,
            mask: cap - 1,
            head: CachePadded(AtomicUsize::new(0)),
            tail: CachePadded(AtomicUsize::new(0)),
        }
    }

    /// Producer side: enqueue or hand the value back if full.
    fn try_push(&self, v: T) -> Result<(), T> {
        let tail = self.tail.0.load(Ordering::Relaxed);
        let head = self.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > self.mask {
            return Err(v);
        }
        // Safety: SPSC — this thread is the only producer, and the slot
        // at `tail` is unoccupied (consumer is at or past `head`).
        unsafe { (*self.buf[tail & self.mask].get()).write(v) };
        self.tail.0.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side: dequeue if non-empty.
    fn try_pop(&self) -> Option<T> {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // Safety: SPSC — this thread is the only consumer, and the slot
        // at `head` was fully written before the producer's Release
        // store of `tail` made it visible.
        let v = unsafe { (*self.buf[head & self.mask].get()).assume_init_read() };
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        Some(v)
    }
}

impl<T> Drop for SpscRing<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

/// Result of a completed sharded (or sequential-reference) run.
#[derive(Debug)]
pub struct ShardRun<S> {
    /// Final per-domain states, in domain order.
    pub states: Vec<S>,
    /// Events processed across all shards.
    pub events: u64,
    /// Events that crossed a shard boundary through a ring.
    pub cross_sends: u64,
    /// Adaptive calendar-queue resizes summed over the shards.
    pub resizes: u64,
}

/// A sharded simulation: per-domain states plus the initial event set.
pub struct ShardSim<S, E> {
    cfg: ShardConfig,
    states: Vec<S>,
    initial: Vec<(Domain, SimTime, E)>,
    init_seq: u64,
}

/// Shared synchronization surfaces, one allocation each, borrowed by
/// every worker.
struct Shared<E> {
    /// `bounds[s]`: shard `s`'s published safe time, in ps.
    bounds: Vec<AtomicU64>,
    /// Ring from shard `i` to shard `j` at `rings[i][j]` (unused when
    /// `i == j`, kept square for O(1) addressing).
    rings: Vec<Vec<SpscRing<Msg<E>>>>,
    /// Undelivered events across the whole simulation; 0 is the stable
    /// termination condition (incremented before the decrement of the
    /// event that produced each send).
    active: AtomicU64,
    /// Cooperative abort (first error wins).
    stop: AtomicBool,
    error: Mutex<Option<ShardError>>,
}

impl<E> Shared<E> {
    fn fail(&self, e: ShardError) {
        if let Ok(mut slot) = self.error.lock() {
            if slot.is_none() {
                *slot = Some(e);
            }
        }
        self.stop.store(true, Ordering::Release);
    }
}

/// What one worker thread hands back.
struct WorkerOut<S> {
    /// `(domain, state)` for each domain the shard owned.
    states: Vec<(Domain, S)>,
    popped: u64,
    cross_sends: u64,
    resizes: u64,
}

impl<S: Send, E: Send> ShardSim<S, E> {
    /// A simulation over `states.len()` domains (domain `d`'s state is
    /// `states[d]`).
    pub fn new(cfg: ShardConfig, states: Vec<S>) -> Result<Self, ShardError> {
        if states.is_empty() {
            return Err(ShardError::NoDomains);
        }
        if states.len() >= INIT_SRC as usize {
            return Err(ShardError::TooManyDomains(states.len()));
        }
        if cfg.threads == 0 {
            return Err(ShardError::ZeroThreads);
        }
        if cfg.lookahead.ps() == 0 {
            return Err(ShardError::ZeroLookahead);
        }
        if cfg.ring_capacity < 2 || !cfg.ring_capacity.is_power_of_two() {
            return Err(ShardError::BadRingCapacity(cfg.ring_capacity));
        }
        Ok(ShardSim {
            cfg,
            states,
            initial: Vec::new(),
            init_seq: 0,
        })
    }

    /// Schedule an initial event before the run starts. Initial events
    /// carry a reserved source tag, so their order is their schedule
    /// order regardless of domain or thread count.
    pub fn schedule(&mut self, dst: Domain, at: SimTime, event: E) -> Result<(), ShardError> {
        if (dst as usize) >= self.states.len() {
            return Err(ShardError::UnknownDomain(dst));
        }
        self.initial.push((dst, at, event));
        self.init_seq += 1;
        Ok(())
    }

    /// Run to completion on `min(threads, ndomains)` worker threads.
    ///
    /// `handler` is invoked as `(state, domain, time, event, outbox)`;
    /// it must be deterministic for the run to be reproducible. The
    /// final states are bit-identical to [`ShardSim::run_sequential`]
    /// for every thread count — the engine's core contract.
    pub fn run<H>(self, handler: H) -> Result<ShardRun<S>, ShardError>
    where
        H: Fn(&mut S, Domain, SimTime, E, &mut Outbox<E>) + Sync,
    {
        let ndomains = self.states.len();
        let nshards = self.cfg.threads.min(ndomains);
        if nshards == 1 {
            return self.run_sequential(handler);
        }
        let lookahead = self.cfg.lookahead;
        let shared = Shared {
            bounds: (0..nshards).map(|_| AtomicU64::new(0)).collect(),
            rings: (0..nshards)
                .map(|_| {
                    (0..nshards)
                        .map(|_| SpscRing::with_capacity(self.cfg.ring_capacity))
                        .collect()
                })
                .collect(),
            active: AtomicU64::new(self.initial.len() as u64),
            stop: AtomicBool::new(false),
            error: Mutex::new(None),
        };

        // Partition domains round-robin and pre-load each shard's queue.
        let mut shard_states: Vec<Vec<(Domain, S)>> = (0..nshards).map(|_| Vec::new()).collect();
        for (d, s) in self.states.into_iter().enumerate() {
            shard_states[d % nshards].push((d as Domain, s));
        }
        let mut shard_queues: Vec<EventQueue<(Domain, u64, E)>> =
            (0..nshards).map(|_| EventQueue::adaptive()).collect();
        for (i, (dst, at, ev)) in self.initial.into_iter().enumerate() {
            let key = merge_key(i as u64, INIT_SRC);
            shard_queues[dst as usize % nshards].push_keyed(at, key, (dst, key, ev));
        }
        // Seed every bound before any thread starts: a shard with work
        // can send no earlier than head + L; an idle shard only reacts
        // to others, so the global minimum head + L bounds it too.
        let global_min = shard_queues
            .iter()
            .filter_map(|q| q.peek_time())
            .map(|t| t.ps())
            .min()
            .unwrap_or(u64::MAX);
        for (s, q) in shard_queues.iter().enumerate() {
            let head = q.peek_time().map_or(global_min, |t| t.ps());
            shared.bounds[s].store(head.saturating_add(lookahead.ps()), Ordering::Release);
        }

        let shared = &shared;
        let handler = &handler;
        let outs: Vec<Result<WorkerOut<S>, ()>> = thread::scope(|scope| {
            let mut handles = Vec::with_capacity(nshards);
            for (me, (states, queue)) in shard_states
                .drain(..)
                .zip(shard_queues.drain(..))
                .enumerate()
            {
                handles.push(scope.spawn(move || {
                    run_worker(
                        me, nshards, ndomains, lookahead, states, queue, shared, handler,
                    )
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().map_err(|_| ()))
                .collect()
        });

        let mut slots: Vec<Option<S>> = (0..ndomains).map(|_| None).collect();
        let (mut events, mut cross_sends, mut resizes) = (0u64, 0u64, 0u64);
        let mut worker_failed = false;
        for out in outs {
            match out {
                Ok(w) => {
                    events += w.popped;
                    cross_sends += w.cross_sends;
                    resizes += w.resizes;
                    for (d, s) in w.states {
                        slots[d as usize] = Some(s);
                    }
                }
                Err(()) => worker_failed = true,
            }
        }
        if let Ok(mut slot) = shared.error.lock() {
            if let Some(e) = slot.take() {
                return Err(e);
            }
        }
        if worker_failed {
            return Err(ShardError::WorkerFailed);
        }
        let states: Result<Vec<S>, ShardError> = slots
            .into_iter()
            .map(|s| s.ok_or(ShardError::WorkerFailed))
            .collect();
        Ok(ShardRun {
            states: states?,
            events,
            cross_sends,
            resizes,
        })
    }

    /// The single-threaded reference: one adaptive calendar queue, the
    /// same content-derived keys, no rings, no atomics. Bit-identical to
    /// [`ShardSim::run`] at any thread count, and the baseline the
    /// speedup numbers in `BENCH_engine.json` are measured against.
    pub fn run_sequential<H>(self, handler: H) -> Result<ShardRun<S>, ShardError>
    where
        H: Fn(&mut S, Domain, SimTime, E, &mut Outbox<E>),
    {
        let ndomains = self.states.len();
        let lookahead = self.cfg.lookahead;
        let mut states = self.states;
        let mut queue: EventQueue<(Domain, u64, E)> = EventQueue::adaptive();
        for (i, (dst, at, ev)) in self.initial.into_iter().enumerate() {
            let key = merge_key(i as u64, INIT_SRC);
            queue.push_keyed(at, key, (dst, key, ev));
        }
        let mut send_seq: Vec<u64> = vec![0; ndomains];
        let mut outbox = Outbox { msgs: Vec::new() };
        let mut events = 0u64;
        while let Some((t, (dst, _key, ev))) = queue.pop() {
            handler(&mut states[dst as usize], dst, t, ev, &mut outbox);
            events += 1;
            for (to, at, msg) in outbox.msgs.drain(..) {
                if (to as usize) >= ndomains {
                    return Err(ShardError::UnknownDomain(to));
                }
                if at < t {
                    return Err(ShardError::PastSend { now: t, at });
                }
                if to != dst && at < t + lookahead {
                    return Err(ShardError::LookaheadViolation {
                        now: t,
                        at,
                        lookahead,
                    });
                }
                let key = merge_key(send_seq[dst as usize], dst as u64);
                send_seq[dst as usize] += 1;
                queue.push_keyed(at, key, (to, key, msg));
            }
        }
        Ok(ShardRun {
            states,
            events,
            cross_sends: 0,
            resizes: queue.resizes(),
        })
    }
}

/// One shard's event loop. See the module docs for the protocol.
#[allow(clippy::too_many_arguments)]
fn run_worker<S, E: Send, H>(
    me: usize,
    nshards: usize,
    ndomains: usize,
    lookahead: Duration,
    states: Vec<(Domain, S)>,
    mut queue: EventQueue<(Domain, u64, E)>,
    shared: &Shared<E>,
    handler: &H,
) -> WorkerOut<S>
where
    H: Fn(&mut S, Domain, SimTime, E, &mut Outbox<E>) + Sync,
{
    let la_ps = lookahead.ps();
    let mut states = states;
    // Per-owned-domain send sequence numbers (domain d lives at local
    // index d / nshards under the round-robin partition).
    let mut send_seq: Vec<u64> = vec![0; states.len()];
    let mut outbox = Outbox { msgs: Vec::new() };
    let (mut popped, mut cross_sends) = (0u64, 0u64);

    'main: loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        // 1. Snapshot peer bounds *before* draining: everything below
        //    the snapshot is guaranteed drained afterwards (Acquire on
        //    the bound pairs with the sender's Release publish, which
        //    follows its ring pushes).
        let mut snap_min = u64::MAX;
        for (r, b) in shared.bounds.iter().enumerate() {
            if r != me {
                snap_min = snap_min.min(b.load(Ordering::Acquire));
            }
        }
        // 2. Drain inbound rings into the local calendar queue.
        for r in 0..nshards {
            if r == me {
                continue;
            }
            while let Some(m) = shared.rings[r][me].try_pop() {
                queue.push_keyed(m.at, m.key, (m.dst, m.key, m.event));
            }
        }
        // 3. Stable termination: every event everywhere delivered and
        //    handled (sends are counted before their cause is retired).
        if shared.active.load(Ordering::Acquire) == 0 {
            break;
        }
        // 4. Process every event strictly below the snapshot: nothing
        //    at or above it is complete — a peer may still send a tying
        //    timestamp, and ties order by content key.
        let mut progressed = false;
        while let Some((t, _)) = queue.peek_key() {
            if t.ps() >= snap_min {
                break;
            }
            let Some((now, (dst, _key, ev))) = queue.pop() else {
                break;
            };
            let local = dst as usize / nshards;
            handler(&mut states[local].1, dst, now, ev, &mut outbox);
            popped += 1;
            progressed = true;
            // Flush sends before retiring the event so `active` can
            // never dip to 0 with work still in flight.
            for (to, at, msg) in outbox.msgs.drain(..) {
                if (to as usize) >= ndomains {
                    shared.fail(ShardError::UnknownDomain(to));
                    break 'main;
                }
                if at < now {
                    shared.fail(ShardError::PastSend { now, at });
                    break 'main;
                }
                if to != dst && at < now + lookahead {
                    shared.fail(ShardError::LookaheadViolation { now, at, lookahead });
                    break 'main;
                }
                let key = merge_key(send_seq[local], dst as u64);
                send_seq[local] += 1;
                shared.active.fetch_add(1, Ordering::AcqRel);
                let target = to as usize % nshards;
                if target == me {
                    queue.push_keyed(at, key, (to, key, msg));
                } else {
                    cross_sends += 1;
                    let mut m = Msg {
                        dst: to,
                        at,
                        key,
                        event: msg,
                    };
                    // Bounded ring: on full, drain own inbound (the
                    // peer may be blocked on *our* ring) and retry.
                    // `active > 0` keeps the receiver alive meanwhile.
                    loop {
                        match shared.rings[me][target].try_push(m) {
                            Ok(()) => break,
                            Err(back) => {
                                m = back;
                                if shared.stop.load(Ordering::Acquire) {
                                    break 'main;
                                }
                                for r in 0..nshards {
                                    if r == me {
                                        continue;
                                    }
                                    while let Some(inb) = shared.rings[r][me].try_pop() {
                                        queue.push_keyed(
                                            inb.at,
                                            inb.key,
                                            (inb.dst, inb.key, inb.event),
                                        );
                                    }
                                }
                                thread::yield_now();
                            }
                        }
                    }
                }
            }
            shared.active.fetch_sub(1, Ordering::AcqRel);
        }
        // 5. Publish the new safe time (monotone; only this thread
        //    writes bounds[me], so load-then-store does not race).
        let head = queue.peek_time().map_or(u64::MAX, |t| t.ps());
        let bound = head.min(snap_min).saturating_add(la_ps);
        if bound > shared.bounds[me].load(Ordering::Relaxed) {
            shared.bounds[me].store(bound, Ordering::Release);
        }
        if !progressed {
            thread::yield_now();
        }
    }

    WorkerOut {
        states,
        popped,
        cross_sends,
        resizes: queue.resizes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const L: Duration = Duration::from_ns(8);

    /// Per-domain test state: (events handled, running hash).
    type HopState = (u64, u64);
    /// Test event payload: (remaining hop budget, tag).
    type HopEv = (u32, u64);

    /// A deterministic mixing step (SplitMix64 finalizer).
    fn mix(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Workload: every event hashes into its domain's accumulator and
    /// fans out 0–2 follow-ups (cross-domain at `t + L + jitter`,
    /// same-domain at `t + jitter`) until a per-event hop budget runs
    /// out. Exercises ties, fan-out, rings, and both send kinds.
    fn hopper(
        ndomains: usize,
    ) -> impl Fn(&mut HopState, Domain, SimTime, HopEv, &mut Outbox<HopEv>) + Sync {
        move |state, d, t, (hops, tag), out| {
            state.0 += 1;
            state.1 = mix(state.1 ^ tag ^ t.ps() ^ d as u64);
            if hops == 0 {
                return;
            }
            let r = mix(tag ^ state.1);
            let fan = (r % 3) as u32; // 0, 1 or 2 follow-ups
            for k in 0..fan {
                let rr = mix(r ^ k as u64);
                let dst = (rr % ndomains as u64) as Domain;
                let jitter = Duration::from_ps(rr % 2_000);
                let at = if dst == d { t + jitter } else { t + L + jitter };
                out.send(dst, at, (hops - 1, rr));
            }
        }
    }

    fn build(ndomains: usize, threads: usize, seeds: u64) -> ShardSim<(u64, u64), (u32, u64)> {
        let mut sim =
            ShardSim::new(ShardConfig::new(threads, L), vec![(0u64, 0u64); ndomains]).unwrap();
        for i in 0..seeds {
            let d = (mix(i) % ndomains as u64) as Domain;
            sim.schedule(d, SimTime(1 + (mix(i ^ 0xABCD) % 50_000)), (6, mix(i)))
                .unwrap();
        }
        sim
    }

    #[test]
    fn ring_roundtrips_and_reports_full() {
        let ring: SpscRing<u32> = SpscRing::with_capacity(4);
        assert!(ring.try_pop().is_none());
        for i in 0..4 {
            assert!(ring.try_push(i).is_ok());
        }
        assert_eq!(ring.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert!(ring.try_pop().is_none());
        // Wrap-around across the index mask.
        for round in 0..10u32 {
            assert!(ring.try_push(round).is_ok());
            assert_eq!(ring.try_pop(), Some(round));
        }
    }

    #[test]
    fn sequential_reference_is_reproducible() {
        let a = build(6, 1, 64).run_sequential(hopper(6)).unwrap();
        let b = build(6, 1, 64).run_sequential(hopper(6)).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.events, b.events);
        assert!(a.events >= 64, "fan-out must generate work");
    }

    #[test]
    fn threaded_matches_sequential_for_every_thread_count() {
        let reference = build(6, 1, 128).run_sequential(hopper(6)).unwrap();
        for threads in [1usize, 2, 4] {
            let run = build(6, threads, 128).run(hopper(6)).unwrap();
            assert_eq!(
                run.states, reference.states,
                "{threads} threads diverged from the sequential reference"
            );
            assert_eq!(run.events, reference.events);
        }
    }

    #[test]
    fn threaded_run_is_reproducible_across_invocations() {
        let a = build(5, 4, 96).run(hopper(5)).unwrap();
        let b = build(5, 4, 96).run(hopper(5)).unwrap();
        assert_eq!(a.states, b.states);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn more_threads_than_domains_is_clamped() {
        let run = build(2, 16, 32).run(hopper(2)).unwrap();
        let reference = build(2, 1, 32).run_sequential(hopper(2)).unwrap();
        assert_eq!(run.states, reference.states);
    }

    #[test]
    fn tiny_rings_still_complete() {
        let mut cfg = ShardConfig::new(3, L);
        cfg.ring_capacity = 2; // force constant back-pressure
        let mut sim = ShardSim::new(cfg, vec![(0u64, 0u64); 4]).unwrap();
        for i in 0..96u64 {
            sim.schedule((i % 4) as Domain, SimTime(1 + i * 7), (6, mix(i)))
                .unwrap();
        }
        let run = sim.run(hopper(4)).unwrap();
        let reference = build_with(4, 96).run_sequential(hopper(4)).unwrap();
        assert_eq!(run.states, reference.states);

        fn build_with(nd: usize, seeds: u64) -> ShardSim<(u64, u64), (u32, u64)> {
            let mut sim = ShardSim::new(ShardConfig::new(1, L), vec![(0u64, 0u64); nd]).unwrap();
            for i in 0..seeds {
                sim.schedule((i % nd as u64) as Domain, SimTime(1 + i * 7), (6, mix(i)))
                    .unwrap();
            }
            sim
        }
    }

    #[test]
    fn lookahead_violation_is_an_error_not_a_panic() {
        let mut sim = ShardSim::new(ShardConfig::new(2, L), vec![0u64; 2]).unwrap();
        sim.schedule(0, SimTime(10), ()).unwrap();
        let out = sim.run(|_s: &mut u64, _d, t, _e, out: &mut Outbox<()>| {
            out.send(1, t + Duration::from_ps(1), ()); // undercuts L
        });
        assert!(matches!(out, Err(ShardError::LookaheadViolation { .. })));
    }

    #[test]
    fn past_send_is_an_error() {
        let mut sim = ShardSim::new(ShardConfig::new(2, L), vec![0u64; 2]).unwrap();
        sim.schedule(0, SimTime(100), ()).unwrap();
        let out = sim.run_sequential(|_s, _d, _t, _e, out: &mut Outbox<()>| {
            out.send(0, SimTime(5), ());
        });
        assert_eq!(
            out.err(),
            Some(ShardError::PastSend {
                now: SimTime(100),
                at: SimTime(5)
            })
        );
    }

    #[test]
    fn config_validation() {
        assert_eq!(
            ShardSim::<u64, ()>::new(ShardConfig::new(2, L), vec![]).err(),
            Some(ShardError::NoDomains)
        );
        assert_eq!(
            ShardSim::<u64, ()>::new(ShardConfig::new(0, L), vec![0; 2]).err(),
            Some(ShardError::ZeroThreads)
        );
        assert_eq!(
            ShardSim::<u64, ()>::new(ShardConfig::new(2, Duration::from_ps(0)), vec![0; 2]).err(),
            Some(ShardError::ZeroLookahead)
        );
        let mut cfg = ShardConfig::new(2, L);
        cfg.ring_capacity = 3;
        assert_eq!(
            ShardSim::<u64, ()>::new(cfg, vec![0; 2]).err(),
            Some(ShardError::BadRingCapacity(3))
        );
    }

    #[test]
    fn unknown_domain_is_an_error() {
        let mut sim = ShardSim::new(ShardConfig::new(2, L), vec![0u64; 2]).unwrap();
        assert_eq!(
            sim.schedule(9, SimTime(1), ()).err(),
            Some(ShardError::UnknownDomain(9))
        );
        sim.schedule(0, SimTime(1), ()).unwrap();
        let out = sim.run(|_s, _d, t, _e, out: &mut Outbox<()>| {
            out.send(7, t + L, ());
        });
        assert_eq!(out.err(), Some(ShardError::UnknownDomain(7)));
    }
}
