//! Generational slab: array-backed storage with stable `u64` keys.
//!
//! The simulator's per-request bookkeeping used to live in
//! `HashMap<u64, _>` tables, paying a SipHash invocation (and a probe
//! chain) on every request, access, and completion — the hottest edges in
//! the whole event loop. A slab replaces that with a direct index: keys
//! are `(index, generation)` pairs packed into a `u64`
//! ([`SlabKey::index`] in the low 32 bits, generation above), so lookup
//! is one bounds-checked array access.
//!
//! Generations catch use-after-free at the call site: freeing a slot
//! bumps its generation, so a stale key held by an in-flight event
//! resolves to `None` (or panics via [`Slab::get`]-style accessors used
//! with `expect`) instead of silently aliasing a recycled slot — the
//! moral equivalent of the old `HashMap` `expect("request FSM")` checks,
//! but O(1).
//!
//! Freed slots are recycled LIFO through an intrusive free list, so
//! steady-state simulations allocate nothing after warm-up.

/// A packed `(index, generation)` slab key.
///
/// The public alias `RequestId = u64` elsewhere in the workspace is
/// exactly this packed form, so ids stay `Copy`, `Ord`, and printable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SlabKey(pub u64);

impl SlabKey {
    /// Pack an index/generation pair.
    #[inline]
    pub fn new(index: u32, generation: u32) -> Self {
        SlabKey(((generation as u64) << 32) | index as u64)
    }

    /// Slot index within the slab.
    #[inline]
    pub fn index(self) -> u32 {
        self.0 as u32
    }

    /// Slot generation at key creation.
    #[inline]
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// The raw packed value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for SlabKey {
    #[inline]
    fn from(raw: u64) -> Self {
        SlabKey(raw)
    }
}

impl From<SlabKey> for u64 {
    #[inline]
    fn from(k: SlabKey) -> u64 {
        k.0
    }
}

enum Slot<T> {
    /// Free; holds the next free slot index (or `u32::MAX` for none).
    Free {
        next_free: u32,
    },
    Occupied(T),
}

/// Array-backed storage with O(1) insert/lookup/remove and generational
/// use-after-free detection. See the module docs for why.
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
    /// Per-slot generation; bumped on free.
    generations: Vec<u32>,
    free_head: u32,
    len: usize,
}

const NO_FREE: u32 = u32::MAX;

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            slots: Vec::new(),
            generations: Vec::new(),
            free_head: NO_FREE,
            len: 0,
        }
    }

    /// An empty slab with room for `cap` values before reallocating.
    pub fn with_capacity(cap: usize) -> Self {
        Slab {
            slots: Vec::with_capacity(cap),
            generations: Vec::with_capacity(cap),
            free_head: NO_FREE,
            len: 0,
        }
    }

    /// Number of live values.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no values are live.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `value`, returning its key.
    pub fn insert(&mut self, value: T) -> SlabKey {
        self.len += 1;
        if self.free_head != NO_FREE {
            let index = self.free_head;
            match self.slots[index as usize] {
                Slot::Free { next_free } => self.free_head = next_free,
                Slot::Occupied(_) => unreachable!("free list points at occupied slot"),
            }
            self.slots[index as usize] = Slot::Occupied(value);
            SlabKey::new(index, self.generations[index as usize])
        } else {
            let index = self.slots.len() as u32;
            assert!(index != u32::MAX, "slab exhausted 2^32 slots");
            self.slots.push(Slot::Occupied(value));
            self.generations.push(0);
            SlabKey::new(index, 0)
        }
    }

    #[inline]
    fn check(&self, key: SlabKey) -> Option<usize> {
        let i = key.index() as usize;
        (i < self.slots.len() && self.generations[i] == key.generation()).then_some(i)
    }

    /// Shared access to the value for `key`; `None` if the key is stale
    /// or was never issued.
    #[inline]
    pub fn get(&self, key: SlabKey) -> Option<&T> {
        match self.check(key).map(|i| &self.slots[i]) {
            Some(Slot::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Exclusive access to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: SlabKey) -> Option<&mut T> {
        match self.check(key) {
            Some(i) => match &mut self.slots[i] {
                Slot::Occupied(v) => Some(v),
                Slot::Free { .. } => None,
            },
            None => None,
        }
    }

    /// Whether `key` refers to a live value.
    #[inline]
    pub fn contains(&self, key: SlabKey) -> bool {
        self.get(key).is_some()
    }

    /// Remove and return the value for `key`; `None` if already gone.
    /// The slot's generation is bumped, invalidating every copy of `key`.
    pub fn remove(&mut self, key: SlabKey) -> Option<T> {
        let i = self.check(key)?;
        if matches!(self.slots[i], Slot::Free { .. }) {
            return None;
        }
        let old = std::mem::replace(
            &mut self.slots[i],
            Slot::Free {
                next_free: self.free_head,
            },
        );
        self.free_head = i as u32;
        self.generations[i] = self.generations[i].wrapping_add(1);
        self.len -= 1;
        match old {
            Slot::Occupied(v) => Some(v),
            Slot::Free { .. } => unreachable!("checked occupied above"),
        }
    }

    /// Iterate over live `(key, &value)` pairs in index order (diagnostic
    /// use; not on the hot path).
    pub fn iter(&self) -> impl Iterator<Item = (SlabKey, &T)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Occupied(v) => Some((SlabKey::new(i as u32, self.generations[i]), v)),
            Slot::Free { .. } => None,
        })
    }
}

impl<T> std::ops::Index<SlabKey> for Slab<T> {
    type Output = T;

    /// Panicking lookup, for call sites where a missing key is a model
    /// bug (the slab equivalent of `map[&k]`).
    #[inline]
    fn index(&self, key: SlabKey) -> &T {
        self.get(key)
            .expect("stale or unknown slab key (freed slot reused?)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_panics_on_stale_key() {
        let mut s = Slab::new();
        let k = s.insert(5);
        assert_eq!(s[k], 5);
        s.remove(k);
        assert!(std::panic::catch_unwind(|| s[k]).is_err());
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None, "removed key is dead");
        assert_eq!(s.remove(a), None, "double remove is a no-op");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slots_recycle_with_new_generation() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(b.index(), a.index(), "LIFO slot reuse");
        assert_ne!(b.generation(), a.generation());
        assert_eq!(s.get(a), None, "stale key misses despite slot reuse");
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn keys_pack_and_unpack() {
        let k = SlabKey::new(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!(k.index(), 0xDEAD_BEEF);
        assert_eq!(k.generation(), 0x1234_5678);
        let raw: u64 = k.into();
        assert_eq!(SlabKey::from(raw), k);
    }

    #[test]
    fn get_mut_mutates_in_place() {
        let mut s = Slab::new();
        let k = s.insert(vec![1, 2]);
        s.get_mut(k).unwrap().push(3);
        assert_eq!(s.get(k).unwrap(), &vec![1, 2, 3]);
    }

    #[test]
    fn iter_lists_live_entries() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        let c = s.insert("c");
        s.remove(b);
        let keys: Vec<_> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![a, c]);
    }

    #[test]
    fn heavy_churn_is_stable() {
        let mut s = Slab::with_capacity(16);
        let mut live = Vec::new();
        for round in 0..1000u64 {
            let k = s.insert(round);
            live.push((k, round));
            if round % 3 == 0 {
                let (k, v) = live.remove((round % live.len() as u64) as usize);
                assert_eq!(s.remove(k), Some(v));
            }
        }
        assert_eq!(s.len(), live.len());
        for (k, v) in live {
            assert_eq!(s.get(k), Some(&v));
        }
        assert!(s.slots.len() <= 1001, "slots bounded by peak occupancy");
    }
}
