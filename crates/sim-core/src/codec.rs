//! Minimal little-endian binary codec for checkpoint files.
//!
//! The workspace is offline (no serde), so the warm-state checkpoint
//! format is hand-rolled: every component that participates in a
//! checkpoint writes its state through a [`ByteWriter`] and reads it back
//! through a [`ByteReader`]. The encoding is deliberately dumb — fixed
//! little-endian integers, length-prefixed sequences, no varints, no
//! alignment — because checkpoints are bulk state (cache line arrays,
//! history rings) where decode simplicity and auditability beat density.
//!
//! Versioning and validation (magic numbers, format versions,
//! fingerprints) are the *caller's* responsibility: this module only
//! guarantees that a truncated or misshapen buffer surfaces as a
//! [`CodecError`] rather than a panic.

use std::fmt;

/// Decode failure: truncated input, a failed validation, or trailing
/// garbage. Carries a static description of what the reader was doing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CodecError {
    /// What failed (e.g. `"truncated input"`, `"bad magic"`).
    pub context: &'static str,
}

impl CodecError {
    /// An error with the given description.
    pub fn new(context: &'static str) -> Self {
        CodecError { context }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.context)
    }
}

impl std::error::Error for CodecError {}

/// Append-only little-endian byte sink.
#[derive(Clone, Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, yielding the encoded buffer.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Write one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Write a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Write a `bool` as one strict `0`/`1` byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Write an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Write raw bytes with no length prefix (fixed-size fields: magic
    /// numbers and the like).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Write a `u64` slice as `len (u64)` followed by the items.
    pub fn put_u64_slice(&mut self, items: &[u64]) {
        self.put_u64(items.len() as u64);
        for &v in items {
            self.put_u64(v);
        }
    }

    /// Write a `u64` as an LEB128 varint (1–10 bytes; small values are
    /// one byte). The density lever behind the trace-file record
    /// encoding — gaps and address deltas are almost always tiny.
    pub fn put_varint(&mut self, mut v: u64) {
        while v >= 0x80 {
            self.buf.push((v as u8 & 0x7F) | 0x80);
            v >>= 7;
        }
        self.buf.push(v as u8);
    }

    /// Write an `i64` as a zigzag-mapped varint (small magnitudes of
    /// either sign stay short).
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }
}

/// Cursor over an encoded buffer; every read is bounds-checked.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// A reader positioned at the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        ByteReader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new("truncated input"));
        }
        let slice = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2B")))
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Read a strict `0`/`1` boolean byte.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::new("invalid boolean byte")),
        }
    }

    /// Read an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read exactly `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Read a length-prefixed `u64` sequence (see
    /// [`ByteWriter::put_u64_slice`]). The length is sanity-checked
    /// against the remaining buffer before allocating.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, CodecError> {
        let len = self.u64()? as usize;
        if self.remaining() < len.saturating_mul(8) {
            return Err(CodecError::new("sequence length exceeds buffer"));
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Read an LEB128 varint `u64` (see [`ByteWriter::put_varint`]).
    /// Rejects encodings longer than 10 bytes and 10-byte encodings
    /// whose final byte overflows 64 bits, so every value has exactly
    /// the representations the writer can produce plus benign
    /// non-canonical short forms.
    pub fn varint(&mut self) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for i in 0..10 {
            let b = self.u8()?;
            if i == 9 && b > 0x01 {
                return Err(CodecError::new("varint overflows u64"));
            }
            v |= ((b & 0x7F) as u64) << (7 * i);
            if b < 0x80 {
                return Ok(v);
            }
        }
        Err(CodecError::new("varint longer than 10 bytes"))
    }

    /// Read a zigzag-mapped varint `i64` (see
    /// [`ByteWriter::put_varint_signed`]).
    pub fn varint_signed(&mut self) -> Result<i64, CodecError> {
        let z = self.varint()?;
        Ok((z >> 1) as i64 ^ -((z & 1) as i64))
    }

    /// Assert the buffer is fully consumed (catches trailing garbage and
    /// reader/writer schema drift).
    pub fn finish(&self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::new("trailing bytes after decode"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u16(0xBEEF);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(0x0123_4567_89AB_CDEF);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-1.5e300);
        w.put_bytes(b"DCAW");
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.f64().unwrap(), -1.5e300);
        assert_eq!(r.bytes(4).unwrap(), b"DCAW");
        r.finish().unwrap();
    }

    #[test]
    fn u64_slice_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u64_slice(&[1, 2, 3, u64::MAX]);
        w.put_u64_slice(&[]);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u64_vec().unwrap(), vec![1, 2, 3, u64::MAX]);
        assert_eq!(r.u64_vec().unwrap(), Vec::<u64>::new());
        r.finish().unwrap();
    }

    #[test]
    fn varint_round_trips_across_magnitudes() {
        let values = [
            0u64,
            1,
            0x7F,
            0x80,
            0x3FFF,
            0x4000,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint(v);
        }
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint().unwrap(), v);
        }
        r.finish().unwrap();
        // Small values really are one byte.
        let mut w = ByteWriter::new();
        w.put_varint(0x7F);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn signed_varint_round_trips() {
        let values = [
            0i64,
            1,
            -1,
            63,
            -64,
            1 << 40,
            -(1 << 40),
            i64::MAX,
            i64::MIN,
        ];
        let mut w = ByteWriter::new();
        for &v in &values {
            w.put_varint_signed(v);
        }
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        for &v in &values {
            assert_eq!(r.varint_signed().unwrap(), v);
        }
        r.finish().unwrap();
        // ±1 cost one byte under zigzag.
        let mut w = ByteWriter::new();
        w.put_varint_signed(-1);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn varint_rejects_overlong_and_overflow() {
        // 11 continuation bytes: longer than any legal u64 encoding.
        let overlong = [0x80u8; 11];
        assert!(ByteReader::new(&overlong).varint().is_err());
        // 10th byte carries bits above the 64th.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        assert!(ByteReader::new(&overflow).varint().is_err());
        // Truncated mid-varint.
        let truncated = [0x80u8, 0x80];
        assert!(ByteReader::new(&truncated).varint().is_err());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = ByteWriter::new();
        w.put_u64(7);
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf[..5]);
        assert!(r.u64().is_err());
    }

    #[test]
    fn oversized_sequence_length_rejected_before_allocation() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // claims ~2^64 items
        let buf = w.into_vec();
        let mut r = ByteReader::new(&buf);
        assert!(r.u64_vec().is_err());
    }

    #[test]
    fn invalid_bool_rejected() {
        let buf = [2u8];
        let mut r = ByteReader::new(&buf);
        assert!(r.bool().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let buf = [0u8; 3];
        let mut r = ByteReader::new(&buf);
        r.u8().unwrap();
        assert!(r.finish().is_err());
        r.bytes(2).unwrap();
        r.finish().unwrap();
    }
}
