//! Simulated time.
//!
//! The whole stack runs on a single picosecond-resolution clock. One CPU
//! cycle at the paper's 4 GHz is exactly 250 ps and every Table II DRAM
//! parameter is an integer number of picoseconds (e.g. tBURST = 3.33 ns is
//! stored as 3330 ps), so no rounding ever accumulates.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Picoseconds per CPU cycle at the paper's 4 GHz core clock.
pub const PS_PER_CPU_CYCLE: u64 = 250;

/// An absolute instant on the simulated clock, in picoseconds since the
/// start of simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl SimTime {
    /// Time zero: the start of simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as "never" sentinel.
    pub const NEVER: SimTime = SimTime(u64::MAX);

    /// Raw picosecond count.
    #[inline]
    pub fn ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub fn as_ns(self) -> u64 {
        self.0 / 1000
    }

    /// Fractional nanoseconds, for human-readable reporting.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Whole CPU cycles at 4 GHz (truncating).
    #[inline]
    pub fn as_cpu_cycles(self) -> u64 {
        self.0 / PS_PER_CPU_CYCLE
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is in
    /// the future (callers use this for latency accounting where clock skew
    /// is impossible but defensive saturation is still cheap).
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// Zero-length span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Duration {
        Duration(ps)
    }

    /// Construct from whole nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Duration {
        Duration(ns * 1000)
    }

    /// Construct from a fractional nanosecond value. Table II quotes
    /// e.g. tRTW = 1.67 ns; `from_ns_f64(1.67)` stores exactly 1670 ps.
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Duration {
        Duration((ns * 1000.0).round() as u64)
    }

    /// Construct from CPU cycles at the 4 GHz core clock.
    #[inline]
    pub const fn from_cpu_cycles(cycles: u64) -> Duration {
        Duration(cycles * PS_PER_CPU_CYCLE)
    }

    /// Raw picosecond count.
    #[inline]
    pub fn ps(self) -> u64 {
        self.0
    }

    /// Fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Fractional CPU cycles.
    #[inline]
    pub fn as_cpu_cycles_f64(self) -> f64 {
        self.0 as f64 / PS_PER_CPU_CYCLE as f64
    }

    /// Scale by an integer factor (burst-length multiples etc.).
    #[inline]
    pub fn times(self, n: u64) -> Duration {
        Duration(self.0 * n)
    }

    /// The longer of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ps", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ns", self.as_ns_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_cycle_is_250ps() {
        assert_eq!(Duration::from_cpu_cycles(1).ps(), 250);
        assert_eq!(Duration::from_cpu_cycles(4).as_ns_f64(), 1.0);
    }

    #[test]
    fn fractional_ns_round_trips() {
        // Table II values with fractional nanoseconds.
        assert_eq!(Duration::from_ns_f64(3.33).ps(), 3330);
        assert_eq!(Duration::from_ns_f64(1.67).ps(), 1670);
        assert_eq!(Duration::from_ns_f64(7.5).ps(), 7500);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::ZERO + Duration::from_ns(10);
        assert_eq!(t.ps(), 10_000);
        let u = t + Duration::from_ns(5);
        assert_eq!((u - t).ps(), 5_000);
        assert_eq!(u.since(t).ps(), 5_000);
        assert_eq!(t.since(u).ps(), 0, "since saturates");
    }

    #[test]
    fn min_max_ordering() {
        let a = SimTime(100);
        let b = SimTime(200);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert!(SimTime::NEVER > b);
    }

    #[test]
    fn duration_scaling() {
        // Direct-mapped TAD burst = 1.25x the 64B burst; modelled as 5/4.
        let burst = Duration::from_ns_f64(3.33);
        assert_eq!(burst.times(5).ps() / 4, 4162);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime(3330)), "3.330ns");
        assert_eq!(format!("{:?}", Duration(250)), "250ps");
    }
}
