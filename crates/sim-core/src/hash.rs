//! Fast non-cryptographic hashing for hot-path tables.
//!
//! `std::collections::HashMap`'s default SipHash-1-3 is DoS-resistant but
//! costs tens of cycles per lookup — pure overhead inside a
//! single-process simulator hashing its own block addresses. This module
//! provides an Fx-style multiply-xor hasher (the rustc folklore hash:
//! word-at-a-time `(h ^ w) * K` with a golden-ratio-derived constant) and
//! map/set aliases using it.
//!
//! Determinism note: unlike the std default, [`FastHasher`] is *unkeyed*,
//! so iteration order of a [`FastHashMap`] is stable across runs for the
//! same insertion sequence. Simulation code must still never iterate a
//! map where order affects results — but with this hasher such a bug
//! would at least be reproducible rather than seed-dependent.

// dca-lint: allow(D01) this module defines the FastHashMap/FastHashSet aliases every other sim crate must use
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx multiplier (derived from the golden ratio, as in rustc).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fx-style streaming hasher: one multiply-xor per 8-byte word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            // Fold the remainder length into the free top byte so inputs
            // that differ only by trailing zero bytes cannot collide.
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            tail[7] |= (rem.len() as u8) << 4;
            self.add(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// One-shot Fx-style digest of a byte blob (word-at-a-time multiply-xor
/// with a length-salted tail, exactly [`FastHasher::write`]'s mixing but
/// seeded so an empty blob is nonzero). Not cryptographic: it guards
/// checkpoint and trace files against bit rot and torn writes, not
/// adversaries, and must stay cheap enough to run over tens of MB on
/// every load.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h = FastHasher {
        hash: 0x5DCA_2016_D16E_5700,
    };
    h.write(bytes);
    h.finish()
}

/// `BuildHasher` for [`FastHasher`].
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// `HashMap` keyed by the fast unkeyed hasher.
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>; // dca-lint: allow(D01) alias definition site

/// `HashSet` keyed by the fast unkeyed hasher.
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>; // dca-lint: allow(D01) alias definition site

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    fn hash_of(v: impl std::hash::Hash) -> u64 {
        FastBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_input_sensitive() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(42u64), hash_of(43u64));
        assert_ne!(hash_of("abc"), hash_of("abd"));
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FastHashMap<u64, &str> = FastHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
        let mut s: FastHashSet<u64> = FastHashSet::default();
        assert!(s.insert(7));
        assert!(!s.insert(7));
    }

    #[test]
    fn block_addresses_spread_across_low_bits() {
        // HashMap uses the low bits of the hash; sequential block
        // addresses (the dominant key pattern) must not collide there.
        let mut low7 = FastHashSet::default();
        for b in 0u64..128 {
            low7.insert(hash_of(b) & 127);
        }
        assert!(low7.len() > 64, "low bits too clumpy: {}", low7.len());
    }

    #[test]
    fn digest64_is_deterministic_and_sensitive() {
        let blob = vec![0xA5u8; 1000];
        assert_eq!(digest64(&blob), digest64(&blob));
        let mut flipped = blob.clone();
        flipped[500] ^= 0x10;
        assert_ne!(digest64(&blob), digest64(&flipped));
        assert_ne!(digest64(&blob[..999]), digest64(&blob));
        assert_ne!(digest64(b""), 0, "empty blob digest is seeded");
    }

    #[test]
    fn odd_length_byte_strings_differ() {
        assert_ne!(hash_of("1234567"), hash_of("12345678"));
        assert_ne!(hash_of(""), hash_of("\0"));
    }
}
