//! # dca-sim-core — simulation substrate for the DCA reproduction
//!
//! Foundation types shared by every other crate in the workspace:
//!
//! * [`time`] — a picosecond-resolution simulated clock ([`SimTime`],
//!   [`Duration`]) with exact conversions for the nanosecond DRAM timing
//!   parameters and the 4 GHz CPU clock used in the paper's Table II.
//! * [`events`] — a deterministic discrete-event queue. Events that tie on
//!   timestamp are delivered in insertion order, which makes every
//!   simulation bit-reproducible for a given seed.
//! * [`slab`] — generational slab storage; the allocator behind every
//!   hot-path id in the engine.
//! * [`hash`] — an Fx-style non-cryptographic hasher for the hot maps
//!   that remain.
//! * [`codec`] — a bounds-checked little-endian binary codec; the
//!   substrate of the warm-state checkpoint files (the workspace is
//!   offline, so no serde).
//! * [`stats`] — cheap statistics primitives (counters, running means,
//!   fixed-bucket histograms) used by the device and controller models to
//!   feed the paper's figures.
//! * [`rng`] — seed-splitting helpers so each (workload, core, component)
//!   tuple derives an independent deterministic RNG stream, plus the
//!   xoshiro-based [`rng::Prng`] the workload generators sample from.
//!
//! Everything here is intentionally dependency-free and single-threaded:
//! determinism is a correctness requirement for the experiment harness
//! (identical seeds must yield identical figures).
//!
//! ## Engine architecture (hot paths)
//!
//! Three structures carry essentially all of the simulator's inner-loop
//! work; all three are O(1) per operation and allocation-free at steady
//! state:
//!
//! 1. **Calendar event queue** ([`events::EventQueue`]). A two-level
//!    scheduler: a ring of 1024 one-nanosecond FIFO buckets covers the
//!    next ~1 µs, and a far-future binary heap absorbs the rare event
//!    beyond the horizon (events migrate into the ring as the cursor
//!    approaches). Delivery order is exactly `(time, insertion seq)` —
//!    bit-identical to the original heap engine, which survives as
//!    [`events::BaselineEventQueue`] for A/B determinism tests and perf
//!    baselines. Buckets sort lazily, and only when an out-of-order push
//!    actually dirtied them, so the common nondecreasing-time push is a
//!    plain FIFO append.
//! 2. **Generational slabs** ([`slab::Slab`]). Request and access ids in
//!    `dca::system` are packed `(index, generation)` slab keys
//!    ([`slab::SlabKey`]), so per-request state lookups are direct array
//!    indexing — no hashing anywhere on the request path; stale ids from
//!    in-flight events are caught by the generation check rather than
//!    aliasing recycled slots.
//! 3. **Slotted command queues** (`dca_sched::AccessQueue`). Controller
//!    read/write queues are sparse sets: entries live contiguously in a
//!    dense array (arbitration scans touch only live entries, in cache
//!    order) while stable slot ids from a free stack make removal an
//!    O(1) `swap_remove` — no element shifting. Iteration is *not* age
//!    ordered; arbiters carry age explicitly as `(enqueued_at, id)`.
//!
//! The `perf_smoke` binary in `dca-bench` measures the end-to-end effect
//! (simulated cycles/sec and events/sec, new engine vs. baseline) and
//! writes `BENCH_engine.json` so every PR leaves a perf trajectory.
//!
//! ## Determinism & codec rules (enforced by `dca-lint`)
//!
//! Bit-identical figures across engines, warm restores, and the
//! serial/pool/TCP-fabric execution paths are a correctness requirement,
//! not an aspiration. The `dca-lint` crate enforces the source-level
//! invariants behind that statically (CI runs it before anything builds):
//!
//! * **No std hash maps in sim code (D01).** `std::collections::HashMap`
//!   seeds SipHash per process, so hash order — and anything computed
//!   from it — differs run to run. Sim crates use [`hash::FastHashMap`]
//!   (unkeyed, stable) or `BTreeMap`.
//! * **No wall clock in sim code (D02).** `Instant::now`/`SystemTime`
//!   belong only to the bench-timing layer (perf smoke, supervisor
//!   deadlines, lease expiry). Simulated time is [`time::SimTime`],
//!   advanced exclusively by the event queue.
//! * **No hash-order iteration (D03).** Even a stable hasher's iteration
//!   order is an accident of insertion; iterating a map into event order
//!   or a report is a silent reproducibility bug. Collect and sort, or
//!   keep the structure in a `BTreeMap`/dense array.
//! * **Codec coverage (C01).** Every struct with `fn encode` must touch
//!   each named field in its `encode`/`decode` bodies — the
//!   "added a field, forgot the codec" class that forced the `WarmState`
//!   v2→v3→v4 bumps now fails the lint instead of corrupting warm
//!   restores.
//! * **No panics on crash-recoverable paths (R01).** The sweep fabric
//!   (`shard::{net,server,agent,supervisor,journal}` in `dca-bench`)
//!   exists to survive worker crashes, torn frames, and dead agents; its
//!   own code must degrade through the retry/quarantine machinery, never
//!   abort.
//!
//! Violations carry a `// dca-lint: allow(<rule>) <reason>` escape hatch,
//! but every pragma is pinned by the linter's workspace self-test — see
//! the `dca-lint` crate docs for the rule set and usage.

pub mod codec;
pub mod events;
pub mod hash;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use events::{BaselineEventQueue, EventQueue};
pub use hash::{digest64, FastBuildHasher, FastHashMap, FastHashSet, FastHasher};
pub use rng::SeedSplitter;
pub use slab::{Slab, SlabKey};
pub use stats::{Counter, Histogram, RunningMean};
pub use time::{Duration, SimTime};
