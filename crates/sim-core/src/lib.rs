//! # dca-sim-core — simulation substrate for the DCA reproduction
//!
//! Foundation types shared by every other crate in the workspace:
//!
//! * [`time`] — a picosecond-resolution simulated clock ([`SimTime`],
//!   [`Duration`]) with exact conversions for the nanosecond DRAM timing
//!   parameters and the 4 GHz CPU clock used in the paper's Table II.
//! * [`events`] — a deterministic discrete-event queue. Events that tie on
//!   timestamp are delivered in insertion order, which makes every
//!   simulation bit-reproducible for a given seed.
//! * [`stats`] — cheap statistics primitives (counters, running means,
//!   fixed-bucket histograms) used by the device and controller models to
//!   feed the paper's figures.
//! * [`rng`] — seed-splitting helpers so each (workload, core, component)
//!   tuple derives an independent deterministic RNG stream.
//!
//! Everything here is intentionally dependency-free and single-threaded:
//! determinism is a correctness requirement for the experiment harness
//! (identical seeds must yield identical figures).

pub mod events;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::EventQueue;
pub use rng::SeedSplitter;
pub use stats::{Counter, Histogram, RunningMean};
pub use time::{Duration, SimTime};
