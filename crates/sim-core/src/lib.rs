//! # dca-sim-core — simulation substrate for the DCA reproduction
//!
//! Foundation types shared by every other crate in the workspace:
//!
//! * [`time`] — a picosecond-resolution simulated clock ([`SimTime`],
//!   [`Duration`]) with exact conversions for the nanosecond DRAM timing
//!   parameters and the 4 GHz CPU clock used in the paper's Table II.
//! * [`events`] — a deterministic discrete-event queue. Events that tie on
//!   timestamp are delivered in insertion order, which makes every
//!   simulation bit-reproducible for a given seed.
//! * [`slab`] — generational slab storage; the allocator behind every
//!   hot-path id in the engine.
//! * [`hash`] — an Fx-style non-cryptographic hasher for the hot maps
//!   that remain.
//! * [`codec`] — a bounds-checked little-endian binary codec; the
//!   substrate of the warm-state checkpoint files (the workspace is
//!   offline, so no serde).
//! * [`stats`] — cheap statistics primitives (counters, running means,
//!   fixed-bucket histograms) used by the device and controller models to
//!   feed the paper's figures.
//! * [`rng`] — seed-splitting helpers so each (workload, core, component)
//!   tuple derives an independent deterministic RNG stream, plus the
//!   xoshiro-based [`rng::Prng`] the workload generators sample from.
//!
//! Everything here is intentionally dependency-free, and determinism is
//! a correctness requirement for the experiment harness (identical seeds
//! must yield identical figures). One module — [`shardloop`] — uses
//! `std::thread`; its whole design exists to keep that determinism
//! guarantee under parallel execution.
//!
//! ## Engine architecture (hot paths)
//!
//! Four structures carry essentially all of the simulator's inner-loop
//! work:
//!
//! 1. **Calendar event queue** ([`events::EventQueue`]). A two-level
//!    scheduler: a ring of 1024 FIFO buckets covers the near future, and
//!    a far-future binary heap absorbs the rare event beyond the horizon
//!    (events migrate into the ring as the cursor approaches). Delivery
//!    order is exactly `(time, seq)` — bit-identical to the original heap
//!    engine, which survives as [`events::BaselineEventQueue`] for A/B
//!    determinism tests and perf baselines. Buckets sort lazily, and only
//!    when an out-of-order push actually dirtied them, so the common
//!    nondecreasing-time push is a plain FIFO append. The slot width is
//!    **self-tuning** ([`events::EventQueue::adaptive`]): the pop path
//!    samples events-per-scanned-slot into an integer EWMA and, when
//!    density leaves a wide hysteresis band, rebuilds the ring one
//!    power-of-two step narrower or wider — the classic calendar-queue
//!    resize — while preserving exact `(time, seq)` order across the
//!    rebuild. `with_slot_shift` pins the knob for A/B experiments.
//! 2. **Sharded event loop** ([`shardloop`]). A conservative-time
//!    parallel engine for event traffic that partitions into static
//!    *domains* (per DRAM-cache channel, the main-memory device, the
//!    CPU/uncore front-end). Each shard runs the calendar queues of its
//!    domains on its own thread; cross-shard events travel through
//!    bounded SPSC rings, and shards synchronize barrier-free by
//!    publishing monotone *safe times*: `bound = min(local head, min
//!    peer bound) + L`, where the lookahead `L` is the minimum
//!    cross-domain latency (a bus transfer plus the tag-access floor —
//!    no domain can affect another sooner). A shard processes events
//!    strictly below the minimum peer bound; ties break on
//!    content-derived keys, so results are bit-identical across 1, 2,
//!    and 4 threads and the sequential reference.
//! 3. **Generational slabs** ([`slab::Slab`]). Request and access ids in
//!    `dca::system` are packed `(index, generation)` slab keys
//!    ([`slab::SlabKey`]), so per-request state lookups are direct array
//!    indexing — no hashing anywhere on the request path; stale ids from
//!    in-flight events are caught by the generation check rather than
//!    aliasing recycled slots.
//! 4. **Slotted command queues** (`dca_sched::AccessQueue`). Controller
//!    read/write queues are sparse sets: entries live contiguously in a
//!    dense array (arbitration scans touch only live entries, in cache
//!    order) while stable slot ids from a free stack make removal an
//!    O(1) `swap_remove` — no element shifting. Iteration is *not* age
//!    ordered; arbiters carry age explicitly as `(enqueued_at, id)`.
//!
//! The `perf_smoke` binary in `dca-bench` measures the end-to-end effect
//! (simulated cycles/sec and events/sec, new engine vs. baseline) and
//! writes `BENCH_engine.json` so every PR leaves a perf trajectory.
//!
//! ## Determinism & codec rules (enforced by `dca-lint`)
//!
//! Bit-identical figures across engines, warm restores, and the
//! serial/pool/TCP-fabric execution paths are a correctness requirement,
//! not an aspiration. The `dca-lint` crate enforces the source-level
//! invariants behind that statically (CI runs it before anything builds):
//!
//! * **No std hash maps in sim code (D01).** `std::collections::HashMap`
//!   seeds SipHash per process, so hash order — and anything computed
//!   from it — differs run to run. Sim crates use [`hash::FastHashMap`]
//!   (unkeyed, stable) or `BTreeMap`.
//! * **No wall clock in sim code (D02).** `Instant::now`/`SystemTime`
//!   belong only to the bench-timing layer (perf smoke, supervisor
//!   deadlines, lease expiry). Simulated time is [`time::SimTime`],
//!   advanced exclusively by the event queue.
//! * **No hash-order iteration (D03).** Even a stable hasher's iteration
//!   order is an accident of insertion; iterating a map into event order
//!   or a report is a silent reproducibility bug. Collect and sort, or
//!   keep the structure in a `BTreeMap`/dense array.
//! * **Codec coverage (C01).** Every struct with `fn encode` must touch
//!   each named field in its `encode`/`decode` bodies — the
//!   "added a field, forgot the codec" class that forced the `WarmState`
//!   v2→v3→v4 bumps now fails the lint instead of corrupting warm
//!   restores.
//! * **No panics on crash-recoverable or cross-thread paths (R01).**
//!   The sweep fabric (`shard::{net,server,agent,supervisor,journal}`
//!   in `dca-bench`) exists to survive worker crashes, torn frames, and
//!   dead agents; [`shardloop`] runs handlers on worker threads where a
//!   panic would poison the whole run. Both degrade through error
//!   values (`ShardError`, retry/quarantine machinery), never abort.
//! * **No `std::sync::mpsc` in the parallel engine (T01).** The shard
//!   loop's determinism rests on bounded SPSC rings plus the safe-time
//!   protocol; an unbounded std channel would hide back-pressure and
//!   reintroduce wall-clock-dependent arrival order.
//!
//! Violations carry a `// dca-lint: allow(<rule>) <reason>` escape hatch,
//! but every pragma is pinned by the linter's workspace self-test — see
//! the `dca-lint` crate docs for the rule set and usage.

pub mod codec;
pub mod events;
pub mod hash;
pub mod rng;
pub mod shardloop;
pub mod slab;
pub mod stats;
pub mod time;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use events::{BaselineEventQueue, EventQueue};
pub use hash::{digest64, FastBuildHasher, FastHashMap, FastHashSet, FastHasher};
pub use rng::SeedSplitter;
pub use shardloop::{Domain, Outbox, ShardConfig, ShardError, ShardRun, ShardSim};
pub use slab::{Slab, SlabKey};
pub use stats::{Counter, Histogram, RunningMean};
pub use time::{Duration, SimTime};
