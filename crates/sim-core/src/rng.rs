//! Deterministic seed derivation.
//!
//! Every stochastic component (one per benchmark stream, per core, per
//! mix) gets its own RNG stream derived from a single experiment seed, so
//! that (a) runs are reproducible and (b) changing one component's
//! consumption pattern cannot perturb another's stream — a classic source
//! of accidental non-determinism in simulators.
//!
//! Derivation uses SplitMix64, the standard generator for seeding
//! (Steele et al., "Fast splittable pseudorandom number generators").

/// Derives independent 64-bit seeds from a root seed and a label path.
#[derive(Clone, Copy, Debug)]
pub struct SeedSplitter {
    state: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedSplitter {
    /// A splitter rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedSplitter { state: seed }
    }

    /// Child splitter for a labelled subcomponent. The label is hashed
    /// into the stream, so `split("coreA")` and `split("coreB")` diverge
    /// even from identical roots.
    ///
    /// Each byte is folded through a full splitmix avalanche and the
    /// *output* chains into the next step — a linear accumulate would let
    /// adversarial (label, root) pairs collide.
    pub fn split(&self, label: &str) -> SeedSplitter {
        let mut state = self.state;
        for b in label.as_bytes() {
            let mut s = state ^ (*b as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            state = splitmix64(&mut s);
        }
        // One extra scramble so empty labels still diverge from the parent.
        let mut s = state ^ 0xD6E8_FEB8_6659_FD93;
        SeedSplitter {
            state: splitmix64(&mut s),
        }
    }

    /// Child splitter indexed numerically (e.g. per-core).
    pub fn split_index(&self, index: u64) -> SeedSplitter {
        let mut s = self.state ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        SeedSplitter {
            state: splitmix64(&mut s),
        }
    }

    /// Materialise a 64-bit seed for handing to a concrete RNG.
    pub fn seed(&self) -> u64 {
        let mut state = self.state;
        splitmix64(&mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_paths_give_identical_seeds() {
        let a = SeedSplitter::new(42).split("cpu").split_index(3).seed();
        let b = SeedSplitter::new(42).split("cpu").split_index(3).seed();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_diverge() {
        let root = SeedSplitter::new(42);
        assert_ne!(root.split("cpu").seed(), root.split("dram").seed());
        assert_ne!(root.split("a").seed(), root.split("b").seed());
    }

    #[test]
    fn different_indices_diverge() {
        let root = SeedSplitter::new(7).split("cores");
        let seeds: Vec<u64> = (0..16).map(|i| root.split_index(i).seed()).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "cores {i} and {j} collided");
            }
        }
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(
            SeedSplitter::new(1).split("x").seed(),
            SeedSplitter::new(2).split("x").seed()
        );
    }

    #[test]
    fn empty_label_differs_from_parent_seed() {
        let root = SeedSplitter::new(99);
        assert_ne!(root.seed(), root.split("").seed());
    }
}
