//! Deterministic seed derivation.
//!
//! Every stochastic component (one per benchmark stream, per core, per
//! mix) gets its own RNG stream derived from a single experiment seed, so
//! that (a) runs are reproducible and (b) changing one component's
//! consumption pattern cannot perturb another's stream — a classic source
//! of accidental non-determinism in simulators.
//!
//! Derivation uses SplitMix64, the standard generator for seeding
//! (Steele et al., "Fast splittable pseudorandom number generators").

/// Derives independent 64-bit seeds from a root seed and a label path.
#[derive(Clone, Copy, Debug)]
pub struct SeedSplitter {
    state: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedSplitter {
    /// A splitter rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        SeedSplitter { state: seed }
    }

    /// Child splitter for a labelled subcomponent. The label is hashed
    /// into the stream, so `split("coreA")` and `split("coreB")` diverge
    /// even from identical roots.
    ///
    /// Each byte is folded through a full splitmix avalanche and the
    /// *output* chains into the next step — a linear accumulate would let
    /// adversarial (label, root) pairs collide.
    pub fn split(&self, label: &str) -> SeedSplitter {
        let mut state = self.state;
        for b in label.as_bytes() {
            let mut s = state ^ (*b as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            state = splitmix64(&mut s);
        }
        // One extra scramble so empty labels still diverge from the parent.
        let mut s = state ^ 0xD6E8_FEB8_6659_FD93;
        SeedSplitter {
            state: splitmix64(&mut s),
        }
    }

    /// Child splitter indexed numerically (e.g. per-core).
    pub fn split_index(&self, index: u64) -> SeedSplitter {
        let mut s = self.state ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        SeedSplitter {
            state: splitmix64(&mut s),
        }
    }

    /// Materialise a 64-bit seed for handing to a concrete RNG.
    pub fn seed(&self) -> u64 {
        let mut state = self.state;
        splitmix64(&mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_paths_give_identical_seeds() {
        let a = SeedSplitter::new(42).split("cpu").split_index(3).seed();
        let b = SeedSplitter::new(42).split("cpu").split_index(3).seed();
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_diverge() {
        let root = SeedSplitter::new(42);
        assert_ne!(root.split("cpu").seed(), root.split("dram").seed());
        assert_ne!(root.split("a").seed(), root.split("b").seed());
    }

    #[test]
    fn different_indices_diverge() {
        let root = SeedSplitter::new(7).split("cores");
        let seeds: Vec<u64> = (0..16).map(|i| root.split_index(i).seed()).collect();
        for i in 0..seeds.len() {
            for j in (i + 1)..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "cores {i} and {j} collided");
            }
        }
    }

    #[test]
    fn different_roots_diverge() {
        assert_ne!(
            SeedSplitter::new(1).split("x").seed(),
            SeedSplitter::new(2).split("x").seed()
        );
    }

    #[test]
    fn empty_label_differs_from_parent_seed() {
        let root = SeedSplitter::new(99);
        assert_ne!(root.seed(), root.split("").seed());
    }
}

/// A small, fast, deterministic PRNG (xoshiro256++), the workspace's
/// stand-in for `rand::rngs::SmallRng` (this build environment is
/// offline, so external crates cannot be fetched).
///
/// Implements exactly the sampling surface the workload generators use:
/// [`Prng::gen_range`] over `Range<u64>` / `Range<usize>` /
/// `RangeInclusive<u32>`, and [`Prng::gen_bool`].
#[derive(Clone, Debug)]
pub struct Prng {
    s: [u64; 4],
}

impl Prng {
    /// Seed via SplitMix64, as the xoshiro authors recommend.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut state);
        }
        // All-zero state is the one forbidden state; splitmix64 cannot
        // produce four zeros from any seed, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Prng { s }
    }

    /// The raw xoshiro256++ state, for checkpointing. Restoring via
    /// [`Prng::from_state`] resumes the stream exactly where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a captured [`Prng::state`].
    ///
    /// # Panics
    /// Panics on the all-zero state, which is outside xoshiro's period
    /// and can never be produced by [`Prng::seed_from_u64`].
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s != [0; 4], "all-zero xoshiro state is invalid");
        Prng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample from `range` (see [`SampleRange`] for the supported
    /// range shapes).
    #[inline]
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        // 53-bit mantissa draw in [0, 1).
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Uniform u64 below `bound` (> 0), via Lemire's multiply-shift with
    /// rejection to remove modulo bias.
    #[inline]
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }
}

/// Range shapes [`Prng::gen_range`] accepts.
pub trait SampleRange {
    /// Element type produced.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut Prng) -> Self::Output;
}

impl SampleRange for core::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample(self, rng: &mut Prng) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded(self.end - self.start)
    }
}

impl SampleRange for core::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample(self, rng: &mut Prng) -> usize {
        assert!(self.start < self.end, "empty range");
        self.start + rng.bounded((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for core::ops::RangeInclusive<u32> {
    type Output = u32;
    #[inline]
    fn sample(self, rng: &mut Prng) -> u32 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + rng.bounded(end as u64 - start as u64 + 1) as u32
    }
}

#[cfg(test)]
mod prng_tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = Prng::seed_from_u64(7);
        let mut b = Prng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Prng::seed_from_u64(8);
        assert_ne!(Prng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Prng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
            let z = r.gen_range(5u32..=5);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Prng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.3).abs() < 0.01, "got {frac}");
        assert!(!Prng::seed_from_u64(3).gen_bool(0.0));
        assert!(Prng::seed_from_u64(3).gen_bool(1.0));
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Prng::seed_from_u64(99);
        for _ in 0..57 {
            a.next_u64();
        }
        let mut b = Prng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_is_unbiased_across_buckets() {
        let mut r = Prng::seed_from_u64(5);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[r.gen_range(0u64..7) as usize] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
