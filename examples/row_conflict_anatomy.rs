//! Anatomy of read-read conflicts and priority inversion — the worked
//! examples of the paper's Figs 4, 5 and 7, reconstructed from a real
//! simulation timeline.
//!
//! Records every DRAM access a small run issues and prints, per design,
//! a window of the schedule showing how writeback tag reads (LRs)
//! interleave with demand reads (PRs) under CD, migrate to the write
//! queue under ROD, and get held + opportunistically flushed under DCA.
//!
//! ```text
//! cargo run --example row_conflict_anatomy --release
//! ```

use dca::{Design, System, SystemConfig, Timeline};
use dca_cpu::Benchmark;
use dca_dram_cache::OrgKind;
use dca_sched::ReadClass;

fn main() {
    for design in Design::ALL {
        let mut cfg = SystemConfig::paper(design, OrgKind::paper_set_assoc());
        cfg.target_insts = 60_000;
        cfg.warmup_ops = 400_000;
        cfg.record_timeline = true;
        // Write-heavy pair: lbm's stores keep the writeback path busy.
        let r = System::new(cfg, &[Benchmark::Libquantum, Benchmark::Lbm]).run();
        let tl = r.timeline.expect("timeline enabled");

        println!("=== {} ===", design.label());
        // Find a window where an LR was served between two PRs (the
        // inversion pattern), or just show the first busy stretch.
        let entries = tl.entries();
        let start = entries
            .windows(3)
            .position(|w| {
                w[0].class == ReadClass::Priority
                    && w[1].class == ReadClass::LowPriority
                    && w[2].class == ReadClass::Priority
            })
            .unwrap_or(0);
        for e in entries.iter().skip(start).take(12) {
            println!("  {}", Timeline::describe(e));
        }
        let conflicts = entries.iter().filter(|e| e.outcome.is_conflict()).count();
        let inversions = entries
            .windows(2)
            .filter(|w| {
                w[0].class == ReadClass::LowPriority
                    && w[1].class == ReadClass::Priority
                    && w[0].channel == w[1].channel
            })
            .count();
        println!(
            "  [{} accesses recorded; {} row conflicts; {} LR-before-PR adjacencies]\n",
            entries.len(),
            conflicts,
            inversions
        );
    }
    println!("note: under CD the LR tag reads of writebacks sit in the read");
    println!("queue and are served between PRs (inversion + RRC); under ROD");
    println!("they move to the write queue; under DCA they wait for OFS slots.");
}
