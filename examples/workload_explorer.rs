//! Explore the synthetic SPEC-2006-like workload generators: per-
//! benchmark stream character, store fractions, and the L2-miss /
//! writeback traffic each one induces.
//!
//! ```text
//! cargo run --example workload_explorer --release [benchmark]
//! ```

use dca::{Design, System, SystemConfig};
use dca_cpu::{Benchmark, TraceGen};
use dca_dram_cache::OrgKind;
use std::collections::HashSet;

fn stream_character(bench: Benchmark) -> (f64, f64, f64) {
    let mut g = TraceGen::new(bench.profile(), 0, 42);
    let mut stores = 0u64;
    let mut dependent = 0u64;
    let mut seen = HashSet::new();
    let mut revisits = 0u64;
    const N: u64 = 50_000;
    for _ in 0..N {
        let op = g.next_op();
        if op.is_store {
            stores += 1;
        }
        if op.dependent {
            dependent += 1;
        }
        if !seen.insert(op.block) {
            revisits += 1;
        }
    }
    (
        stores as f64 / N as f64,
        dependent as f64 / N as f64,
        revisits as f64 / N as f64,
    )
}

fn main() {
    let filter = std::env::args().nth(1);
    println!(
        "{:<12} {:>8} {:>10} {:>9} | {:>8} {:>9} {:>9} {:>8}",
        "benchmark", "stores", "dependent", "revisits", "IPC", "hit-rate", "wb-reqs", "rowhit"
    );
    for bench in Benchmark::ALL {
        if let Some(f) = &filter {
            if bench.name() != f {
                continue;
            }
        }
        let (st, dep, rev) = stream_character(bench);
        // One-core timing run for the induced DRAM-cache traffic.
        let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
        cfg.target_insts = 100_000;
        cfg.warmup_ops = 300_000;
        let r = System::new(cfg, &[bench]).run();
        println!(
            "{:<12} {:>7.1}% {:>9.1}% {:>8.1}% | {:>8.3} {:>8.1}% {:>9} {:>7.1}%",
            bench.name(),
            st * 100.0,
            dep * 100.0,
            rev * 100.0,
            r.cores[0].ipc,
            r.cache_hit_rate() * 100.0,
            r.writeback_requests,
            r.read_row_hit_rate() * 100.0,
        );
    }
    println!("\nstores/dependent/revisits characterise the generator stream;");
    println!("the right half is a 100k-instruction solo run (DCA, direct-mapped).");
}
