//! Head-to-head CD vs ROD vs DCA on the same workload — the paper's §VI
//! story in one run: DCA wins by avoiding read priority inversion while
//! keeping CD's turnaround batching; ROD avoids inversion but pays for
//! bus turnarounds and long write-queue flushes.
//!
//! ```text
//! cargo run --example controller_comparison --release [mix-id]
//! ```

use dca::{Design, System, SystemConfig};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

fn main() {
    let mix_id: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(13);
    let m = mix(mix_id);
    println!("mix {} = {}\n", m.id, m.name());

    for org in [OrgKind::paper_set_assoc(), OrgKind::DirectMapped] {
        println!("--- {} organisation ---", org.label());
        let mut baseline_ipc = 0.0;
        for design in Design::ALL {
            let mut cfg = SystemConfig::paper(design, org);
            cfg.target_insts = 150_000;
            cfg.warmup_ops = 400_000;
            let r = System::new(cfg, &m.benches).run();
            let ipc_sum: f64 = r.cores.iter().map(|c| c.ipc).sum();
            if design == Design::Cd {
                baseline_ipc = ipc_sum;
            }
            let pr: u64 = r.channels.iter().map(|c| c.ctrl.pr_served.get()).sum();
            let lr: u64 = r.channels.iter().map(|c| c.ctrl.lr_served.get()).sum();
            let ofs: u64 = r
                .channels
                .iter()
                .map(|c| c.ctrl.ofs_row_friendly.get() + c.ctrl.ofs_rrpc_cold.get())
                .sum();
            println!(
                "{:4}  speedup {:.3}  miss-lat {:>6.1}ns  acc/turnaround {:>6.2}  \
                 row-hit {:.2}  PR {:>6}  LR {:>6}  OFS {:>6}",
                design.label(),
                ipc_sum / baseline_ipc,
                r.l2_miss_latency.mean_ns(),
                r.accesses_per_turnaround(),
                r.read_row_hit_rate(),
                pr,
                lr,
                ofs,
            );
        }
        println!();
    }
    println!("(speedups are IPC-throughput relative to CD at example scale;");
    println!(" the figures harness computes the paper's weighted speedups)");
}
