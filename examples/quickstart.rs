//! Quickstart: simulate one 4-core Table I mix under the DCA controller
//! and print the headline statistics.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use dca::{Design, System, SystemConfig};
use dca_cpu::mix;
use dca_dram_cache::OrgKind;

fn main() {
    // The paper's configuration: direct-mapped (Alloy-style) 256 MB DRAM
    // cache, DCA controller, BLISS arbiter underneath.
    let mut cfg = SystemConfig::paper(Design::Dca, OrgKind::DirectMapped);
    cfg.target_insts = 200_000; // per core; the paper simulates 500 M
    cfg.warmup_ops = 400_000; // functional warm-up (caches start warm)

    let m = mix(1); // soplex-mcf-gcc-libquantum
    println!(
        "running mix {} ({}) under {}...",
        m.id,
        m.name(),
        cfg.design.label()
    );

    let report = System::new(cfg, &m.benches).run();

    println!("\nper-core results:");
    for (i, core) in report.cores.iter().enumerate() {
        println!(
            "  core{i} {:<12} {:>8} insts {:>9} cycles  IPC {:.3}",
            core.bench, core.insts, core.cycles, core.ipc
        );
    }
    println!("\nDRAM cache:");
    println!(
        "  demand-read hit rate  {:.1}%",
        report.cache_hit_rate() * 100.0
    );
    println!(
        "  MAP-I accuracy        {:.1}%",
        report.predictor_accuracy * 100.0
    );
    println!("  writeback requests    {}", report.writeback_requests);
    println!("  refill requests       {}", report.refill_requests);
    println!("\nstacked-DRAM device:");
    println!(
        "  mean L2 miss latency  {:.1} ns",
        report.l2_miss_latency.mean_ns()
    );
    println!(
        "  accesses/turnaround   {:.2}",
        report.accesses_per_turnaround()
    );
    println!(
        "  read row-hit rate     {:.1}%",
        report.read_row_hit_rate() * 100.0
    );
    println!(
        "\nmain memory: {} reads, {} writes",
        report.mem_reads, report.mem_writes
    );
    println!(
        "simulated time: {:.2} us",
        report.end_time.ps() as f64 / 1e6
    );
}
