//! The permutation-based XOR remapping study (§VI-A "With Remapping").
//!
//! Multi-stream scientific codes walk arrays laid out at aligned offsets,
//! so concurrent streams alias to the same bank at different rows — a
//! row-conflict generator. Zhang et al.'s XOR remap breaks the aliasing
//! by permuting the bank index with low row bits. This example shows the
//! effect per benchmark (strongest for the 7-stream GemsFDTD) and on a
//! 4-core mix.
//!
//! ```text
//! cargo run --example remapping_study --release
//! ```

use dca::{Design, System, SystemConfig};
use dca_cpu::{mix, Benchmark};
use dca_dram::MappingScheme;
use dca_dram_cache::OrgKind;

fn run_alone(bench: Benchmark, remap: bool) -> (f64, f64) {
    let mut cfg = SystemConfig::paper(Design::Cd, OrgKind::DirectMapped);
    if remap {
        cfg.mapping = MappingScheme::XorRemap;
    }
    cfg.target_insts = 150_000;
    cfg.warmup_ops = 300_000;
    let r = System::new(cfg, &[bench]).run();
    let conflicts: u64 = r.channels.iter().map(|c| c.read_row_conflicts).sum();
    let reads: u64 = r.channels.iter().map(|c| c.reads).sum();
    (r.cores[0].ipc, conflicts as f64 / reads.max(1) as f64)
}

fn main() {
    println!("single-benchmark effect of the XOR remap (CD, direct-mapped):\n");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "IPC", "IPC+XOR", "conflicts", "conflicts+XOR"
    );
    for bench in [
        Benchmark::GemsFDTD,
        Benchmark::Leslie3d,
        Benchmark::Bwaves,
        Benchmark::Libquantum,
        Benchmark::Mcf,
    ] {
        let (ipc, conf) = run_alone(bench, false);
        let (ipc_x, conf_x) = run_alone(bench, true);
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>11.1}% {:>11.1}%",
            bench.name(),
            ipc,
            ipc_x,
            conf * 100.0,
            conf_x * 100.0
        );
    }

    println!("\n4-core mix 17 (milc-libquantum-bwaves-GemsFDTD), all designs:\n");
    let m = mix(17);
    for design in Design::ALL {
        for remap in [false, true] {
            let mut cfg = SystemConfig::paper(design, OrgKind::DirectMapped);
            if remap {
                cfg.mapping = MappingScheme::XorRemap;
            }
            cfg.target_insts = 150_000;
            cfg.warmup_ops = 400_000;
            let r = System::new(cfg, &m.benches).run();
            let ipc: f64 = r.cores.iter().map(|c| c.ipc).sum();
            println!(
                "  {}{:<4} ipc_sum={:.3} row-hit={:.3}",
                if remap { "XOR+" } else { "    " },
                design.label(),
                ipc,
                r.read_row_hit_rate()
            );
        }
    }
    println!("\nthe remap mitigates RRC (row conflicts) but NOT read priority");
    println!("inversion — which is why DCA keeps its lead even with remapping.");
}
